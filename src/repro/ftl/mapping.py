"""Page-mapped flash translation layer with channel-striped allocation.

This is the *conventional* SSD management layer the paper's baseline
uses (§2.1): logically consecutive pages are striped across channels so
that **sequential** LBA accesses enjoy full channel parallelism — which
is precisely why *non*-sequential, dimension-crossing accesses
underutilize the device ([P3]).

Allocation is log-structured per (channel, bank): each (channel, bank)
pair keeps an active block that fills page by page; overwrites
invalidate the old physical page and go to a fresh one in the same
(channel, bank) so the striping invariant survives updates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.nvm.address import PhysicalPageAddress
from repro.nvm.geometry import Geometry

__all__ = ["BlockState", "PlaneAllocator", "PageMapFTL", "OutOfSpaceError"]


class OutOfSpaceError(RuntimeError):
    """No free page satisfies the allocation request (GC must run)."""


@dataclass
class BlockState:
    """Book-keeping for one erase block."""

    block_id: int
    next_page: int = 0
    valid: List[bool] = field(default_factory=list)
    erase_count: int = 0
    #: monotone sequence number stamped when the block filled — the age
    #: proxy used by FIFO / cost-benefit victim selection
    filled_seq: int = -1
    #: grown bad: never allocated from or erased again
    retired: bool = False

    def live_pages(self) -> int:
        return sum(self.valid)

    def utilization(self) -> float:
        return self.live_pages() / len(self.valid) if self.valid else 0.0


class _FreeBlockPool:
    """Free-block ids of one plane without materializing the id list.

    Order-equivalent to the original ``list(range(count))`` free list
    under the operations the FTL/GC/bad-block layers use: virgin ids
    leave from the front in ascending order, erased blocks re-enter at
    the tail (FIFO), ``remove`` may take any id.
    """

    __slots__ = ("_virgin_next", "_virgin_end", "_skipped", "_recycled")

    def __init__(self, count: int) -> None:
        self._virgin_next = 0
        self._virgin_end = count
        #: virgin ids removed (retired) before their first allocation
        self._skipped: set = set()
        self._recycled: deque = deque()

    def __len__(self) -> int:
        return (self._virgin_end - self._virgin_next - len(self._skipped)
                + len(self._recycled))

    def __bool__(self) -> bool:
        return len(self) > 0

    def __contains__(self, block_id: int) -> bool:
        if (self._virgin_next <= block_id < self._virgin_end
                and block_id not in self._skipped):
            return True
        return block_id in self._recycled

    def __iter__(self) -> Iterator[int]:
        for block_id in range(self._virgin_next, self._virgin_end):
            if block_id not in self._skipped:
                yield block_id
        yield from self._recycled

    def pop(self, index: int = 0) -> int:
        if index != 0:
            raise IndexError("free-block pool only pops from the front")
        while self._virgin_next < self._virgin_end:
            block_id = self._virgin_next
            self._virgin_next += 1
            if block_id in self._skipped:
                self._skipped.discard(block_id)
                continue
            return block_id
        if not self._recycled:
            raise IndexError("pop from empty free-block pool")
        return self._recycled.popleft()

    def append(self, block_id: int) -> None:
        self._recycled.append(block_id)

    def remove(self, block_id: int) -> None:
        if (self._virgin_next <= block_id < self._virgin_end
                and block_id not in self._skipped):
            self._skipped.add(block_id)
            return
        try:
            self._recycled.remove(block_id)
        except ValueError:
            raise ValueError(
                f"block {block_id} not in free-block pool") from None


class PlaneAllocator:
    """Free-space management for one (channel, bank) pair.

    Keeps a free-block pool and an active block; pages are handed out
    append-only. The GC layer returns blocks to the pool after erasing.
    """

    def __init__(self, channel: int, bank: int, geometry: Geometry) -> None:
        self.channel = channel
        self.bank = bank
        self.geometry = geometry
        #: block states are materialized lazily: a 2 TB-class device has
        #: hundreds of thousands of blocks, most never touched in a run
        self.blocks: Dict[int, BlockState] = {}
        self.free_blocks = _FreeBlockPool(geometry.blocks_per_bank)
        self.active_block: Optional[int] = None
        #: cached BlockState of the active block. Only trusted when its
        #: block_id still matches ``active_block`` — GC layers reset
        #: ``active_block`` directly, and the guard makes that safe
        #: without touching their call sites.
        self._active_state: Optional[BlockState] = None
        self._fill_counter = 0

    def _state(self, block_id: int) -> BlockState:
        state = self.blocks.get(block_id)
        if state is None:
            state = BlockState(block_id,
                               valid=[False] * self.geometry.pages_per_block)
            self.blocks[block_id] = state
        return state

    # ------------------------------------------------------------------
    def free_page_count(self) -> int:
        count = len(self.free_blocks) * self.geometry.pages_per_block
        if self.active_block is not None:
            state = self._active_state
            if state is None or state.block_id != self.active_block:
                state = self._state(self.active_block)
                self._active_state = state
            count += self.geometry.pages_per_block - state.next_page
        return count

    def allocate_page(self) -> PhysicalPageAddress:
        """Next append point; raises :class:`OutOfSpaceError` when full."""
        if self.active_block is None:
            if not self.free_blocks:
                raise OutOfSpaceError(
                    f"(ch{self.channel}, bk{self.bank}) has no free blocks")
            self.active_block = self.free_blocks.pop(0)
            state = self._state(self.active_block)
            self._active_state = state
        else:
            state = self._active_state
            if state is None or state.block_id != self.active_block:
                state = self._state(self.active_block)
                self._active_state = state
        ppa = PhysicalPageAddress(self.channel, self.bank,
                                  self.active_block, state.next_page)
        state.valid[state.next_page] = True
        state.next_page += 1
        if state.next_page == self.geometry.pages_per_block:
            state.filled_seq = self._fill_counter
            self._fill_counter += 1
            self.active_block = None
            self._active_state = None
        return ppa

    def invalidate(self, ppa: PhysicalPageAddress) -> None:
        self._state(ppa.block).valid[ppa.page] = False

    def victim_candidates(self, policy: str = "greedy") -> List[int]:
        """Fully-written blocks, best victim first.

        Policies: ``greedy`` (fewest live pages — reclaims the most per
        erase), ``fifo`` (oldest fill first — even wear, oblivious to
        utilization), ``cost-benefit`` (age × (1-u)/(1+u) — balances
        reclaimed space against the copy cost, favouring old cold
        blocks).
        """
        full = [
            b for b, state in self.blocks.items()
            if state.next_page == self.geometry.pages_per_block
            and b != self.active_block and not state.retired
        ]
        if policy == "greedy":
            return sorted(full, key=lambda b: self.blocks[b].live_pages())
        if policy == "fifo":
            return sorted(full, key=lambda b: self.blocks[b].filled_seq)
        if policy == "cost-benefit":
            def score(b: int) -> float:
                state = self.blocks[b]
                age = self._fill_counter - state.filled_seq
                u = state.utilization()
                return age * (1.0 - u) / (1.0 + u)
            return sorted(full, key=score, reverse=True)
        raise ValueError(f"unknown GC policy {policy!r}")

    def release_block(self, block_id: int) -> None:
        """Return an erased block to the free pool."""
        state = self._state(block_id)
        state.next_page = 0
        state.valid = [False] * self.geometry.pages_per_block
        state.erase_count += 1
        self.free_blocks.append(block_id)

    def retire_block(self, block_id: int) -> None:
        """Take a grown-bad block out of service permanently.

        The block leaves the free pool (if present), stops being the
        active block, and is never offered as a GC victim again. Callers
        must have relocated any live pages first.
        """
        state = self._state(block_id)
        state.retired = True
        state.valid = [False] * self.geometry.pages_per_block
        state.next_page = self.geometry.pages_per_block
        if block_id in self.free_blocks:
            self.free_blocks.remove(block_id)
        if self.active_block == block_id:
            self.active_block = None

    def retired_count(self) -> int:
        return sum(1 for state in self.blocks.values() if state.retired)


class PageMapFTL:
    """LPN → PPA map with conventional channel striping.

    The *stripe target* of logical page ``n`` is::

        channel = n % channels
        bank    = (n // channels) % banks_per_channel

    so LBA-sequential streams fan out over every channel, then every
    bank — the layout file systems assume (§2.1).
    """

    def __init__(self, geometry: Geometry) -> None:
        self.geometry = geometry
        self.map: Dict[int, PhysicalPageAddress] = {}
        self.planes: Dict[Tuple[int, int], PlaneAllocator] = {
            (c, b): PlaneAllocator(c, b, geometry)
            for c in range(geometry.channels)
            for b in range(geometry.banks_per_channel)
        }

    # ------------------------------------------------------------------
    def stripe_target(self, lpn: int) -> Tuple[int, int]:
        channel = lpn % self.geometry.channels
        bank = (lpn // self.geometry.channels) % self.geometry.banks_per_channel
        return channel, bank

    def lookup(self, lpn: int) -> Optional[PhysicalPageAddress]:
        return self.map.get(lpn)

    def allocate(self, lpn: int) -> Tuple[PhysicalPageAddress, Optional[PhysicalPageAddress]]:
        """Bind ``lpn`` to a fresh physical page.

        Returns ``(new_ppa, old_ppa)``; ``old_ppa`` is the invalidated
        previous location for overwrites, else None.
        """
        channel, bank = self.stripe_target(lpn)
        plane = self.planes[(channel, bank)]
        old = self.map.get(lpn)
        if old is not None:
            self.planes[(old.channel, old.bank)].invalidate(old)
        ppa = plane.allocate_page()
        self.map[lpn] = ppa
        return ppa, old

    def trim(self, lpn: int) -> Optional[PhysicalPageAddress]:
        """Drop the mapping for ``lpn`` (discard)."""
        old = self.map.pop(lpn, None)
        if old is not None:
            self.planes[(old.channel, old.bank)].invalidate(old)
        return old

    # ------------------------------------------------------------------
    def free_fraction(self, channel: int, bank: int) -> float:
        plane = self.planes[(channel, bank)]
        return plane.free_page_count() / self.geometry.pages_per_bank

    def mapped_pages(self) -> int:
        return len(self.map)
