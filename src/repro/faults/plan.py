"""Scripted fault plans: deterministic, time-triggered injections.

A :class:`FaultPlan` is a list of events the injector applies as model
time passes the event time: kill a whole channel (every die behind it
becomes unreachable), mark a block bad (programs and erases to it fail
with status-fail), or corrupt one programmed page (its next reads walk
the full retry ladder and fail). Events are observed lazily at the next
flash operation at or after their trigger time, and once applied they
stay applied — a killed channel does not come back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["FaultEvent", "FaultPlan"]

_KINDS = ("kill_channel", "bad_block", "corrupt_page", "kill_device")


@dataclass(frozen=True)
class FaultEvent:
    """One scripted injection.

    ``device`` routes the event in a multi-device pool (0 = the first
    or only device): each device's injector receives only its own
    events, and ``kill_device`` events are additionally observed by the
    pool's host translation layer for degraded-read routing.
    """

    time: float
    kind: str
    channel: int = -1
    bank: int = -1
    block: int = -1
    page: int = -1
    device: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault event kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("fault events cannot trigger before t=0")
        if self.device < 0:
            raise ValueError("fault event device ids start at 0")


class FaultPlan:
    """Builder for a scripted injection schedule (chainable)."""

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------
    def kill_channel(self, channel: int, at: float = 0.0,
                     device: int = 0) -> "FaultPlan":
        """All reads/programs/erases behind ``channel`` fail from ``at``
        on — the scenario NDS cross-channel parity is built for."""
        self.events.append(FaultEvent(at, "kill_channel", channel=channel,
                                      device=device))
        return self

    def kill_device(self, device: int = 0, at: float = 0.0) -> "FaultPlan":
        """The whole device fails from ``at`` on: every channel behind
        it becomes unreachable at once — the scenario cross-device
        parity groups are built for. In a single-device system this
        makes every flash operation fail; in a
        :class:`~repro.cluster.DevicePool` the host translation layer
        reroutes reads through the surviving parity-group members."""
        self.events.append(FaultEvent(at, "kill_device", device=device))
        return self

    def mark_block_bad(self, channel: int, bank: int, block: int,
                       at: float = 0.0, device: int = 0) -> "FaultPlan":
        """Programs and erases to the block report status-fail from
        ``at`` on; already-programmed pages stay readable (the grown-
        bad-block contract)."""
        self.events.append(FaultEvent(at, "bad_block", channel=channel,
                                      bank=bank, block=block, device=device))
        return self

    def corrupt_page(self, channel: int, bank: int, block: int, page: int,
                     at: float = 0.0, device: int = 0) -> "FaultPlan":
        """The page's reads become uncorrectable (full ladder, then
        failure) until its block is erased and it is reprogrammed."""
        self.events.append(FaultEvent(at, "corrupt_page", channel=channel,
                                      bank=bank, block=block, page=page,
                                      device=device))
        return self

    # ------------------------------------------------------------------
    def sorted_events(self) -> Tuple[FaultEvent, ...]:
        """Events in trigger order (stable for equal times)."""
        return tuple(sorted(self.events, key=lambda e: e.time))

    def __len__(self) -> int:
        return len(self.events)
