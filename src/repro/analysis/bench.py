"""Wall-clock hot-path benchmark suite.

Simulated time is free — the model is analytic — so the only cost that
matters for iterating on experiments is *wall-clock* time spent in the
Python hot path: region translation, page fan-out, and per-request
Timeline bookkeeping. This module runs the same GEMM / conv2d macro
scenario on all four systems and reports, per ``system × workload``:

- ``wall_s``        – wall-clock seconds for the whole scenario,
- ``ops``           – simulated operations executed (ingest + tile
  reads + one tile write),
- ``ops_per_s``     – wall-clock throughput,
- ``us_wall_per_op`` – microseconds of wall time per simulated op.

Next to the wall numbers it records a ``simulated`` section: the
deterministic model outputs (ingest / last read / write end times and a
sum over every read completion, all as ``float.hex()``). Two runs of
the benchmark must produce **byte-identical** simulated sections — CI's
``bench-smoke`` job asserts exactly that — while the wall numbers are
the ones allowed to move.

Run it via ``python -m repro bench`` or
``python benchmarks/bench_hotpath.py``.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.nvm import PAPER_PROTOTYPE
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)
from repro.workloads.conv2d import Conv2dWorkload
from repro.workloads.gemm import GemmWorkload

__all__ = ["BENCH_SYSTEMS", "bench_workloads", "run_scenario",
           "run_hotpath_bench", "format_bench", "bench_json"]

BENCH_SYSTEMS = (BaselineSystem, SoftwareNdsSystem, HardwareNdsSystem,
                 OracleSystem)


def bench_workloads(max_tiles: int = 48) -> Dict[str, Callable[[], object]]:
    """The macro scenarios: a GEMM tile sweep and a conv2d halo sweep."""
    return {
        "gemm": lambda: GemmWorkload(n=512, tile=128, max_tiles=max_tiles),
        "conv2d": lambda: Conv2dWorkload(n=1024, tile_rows=128,
                                         tile_cols=256,
                                         max_tiles=max_tiles),
    }


def run_scenario(cls, workload, devices: int = 1,
                 cache=None) -> Tuple[int, Dict[str, str]]:
    """Ingest every dataset, read the full tile plan, write one tile.

    Returns ``(ops, simulated)`` where ``simulated`` holds the
    deterministic end times as ``float.hex()`` strings. Wall time is
    measured by the caller around this function. ``devices > 1`` runs
    the scenario over a device pool (the cluster-layer hot path);
    ``cache=CacheConfig(...)`` puts the host DRAM tier in the hot path
    (lookup/insert bookkeeping on every access).
    """
    kwargs = {} if cache is None else {"cache": cache}
    system = (cls(PAPER_PROTOTYPE, store_data=False, **kwargs)
              if devices <= 1
              else cls(PAPER_PROTOTYPE, store_data=False, devices=devices,
                       **kwargs))
    plan = workload.tile_plan()
    ops = 0
    ingest_result = None
    if isinstance(system, OracleSystem):
        shapes: Dict[str, list] = {}
        for fetch in plan:
            shapes.setdefault(fetch.dataset, [])
            if fetch.extents not in shapes[fetch.dataset]:
                shapes[fetch.dataset].append(fetch.extents)
        for ds in workload.datasets():
            for shape in shapes.get(ds.name, [ds.dims]):
                ingest_result = system.ingest(ds.name, ds.dims,
                                              ds.element_size, tile=shape)
                ops += 1
    else:
        for ds in workload.datasets():
            ingest_result = system.ingest(ds.name, ds.dims, ds.element_size)
            ops += 1
    ingest_end = ingest_result.end_time
    system.reset_time()
    read_sum = 0.0
    last_read = 0.0
    for fetch in plan:
        result = system.read_tile(fetch.dataset, fetch.origin, fetch.extents)
        last_read = result.end_time
        read_sum += result.end_time
        ops += 1
    system.reset_time()
    first = plan[0]
    write_end = system.write_tile(first.dataset, first.origin,
                                  first.extents).end_time
    ops += 1
    simulated = {
        "ingest_end": ingest_end.hex(),
        "last_read_end": last_read.hex(),
        "read_end_sum": read_sum.hex(),
        "write_end": write_end.hex(),
        "reads": len(plan),
    }
    return ops, simulated


def run_hotpath_bench(max_tiles: int = 48, repeats: int = 1,
                      systems: Optional[Sequence] = None) -> Dict:
    """Run every ``system × workload`` scenario and time it.

    With ``repeats > 1`` each cell keeps the *fastest* wall time (the
    usual benchmarking practice: minimum wall time has the least noise)
    while asserting the simulated section never changes between
    repeats.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    chosen = tuple(systems) if systems is not None else BENCH_SYSTEMS
    wall: Dict[str, Dict[str, float]] = {}
    simulated: Dict[str, Dict[str, str]] = {}
    cells = [(f"{wl_name}/{cls.name}", factory, cls, 1)
             for wl_name, factory in bench_workloads(max_tiles).items()
             for cls in chosen]
    # one pooled cell: the cluster translation layer's hot path
    if SoftwareNdsSystem in chosen:
        gemm = bench_workloads(max_tiles)["gemm"]
        cells.append(("gemm/software-nds@4dev", gemm,
                      SoftwareNdsSystem, 4))
        # one serving cell: many tiny single-row reads (embedding
        # lookups) stress per-request translation instead of fan-out
        def embedding():
            from repro.workloads.embedding import EmbeddingWorkload
            return EmbeddingWorkload(num_embeddings=4096, embedding_dim=64,
                                     num_tables=1, batch_size=4,
                                     pooling_factor=4, num_batches=6,
                                     alpha=1.05, weights_precision=4)
        cells.append(("embedding/software-nds", embedding,
                      SoftwareNdsSystem, 1, None))
        # the same serving scenario behind a hot DRAM tier: exercises
        # the cache lookup/insert bookkeeping on the wall-clock path
        from repro.cache.config import CacheConfig
        cells.append(("embedding-cached/software-nds", embedding,
                      SoftwareNdsSystem, 1,
                      CacheConfig(capacity_bytes=8 * 2**20)))
    for entry in cells:
        key, factory, cls, devices = entry[:4]
        cache = entry[4] if len(entry) > 4 else None
        best = None
        ops = 0
        for _ in range(repeats):
            workload = factory()
            t0 = time.perf_counter()
            ops, sim = run_scenario(cls, workload, devices=devices,
                                    cache=cache)
            elapsed = time.perf_counter() - t0
            prior = simulated.get(key)
            if prior is not None and prior != sim:
                raise AssertionError(
                    f"non-deterministic simulated output for {key}")
            simulated[key] = sim
            if best is None or elapsed < best:
                best = elapsed
        wall[key] = {
            "wall_s": round(best, 6),
            "ops": ops,
            "ops_per_s": round(ops / best, 1) if best > 0 else 0.0,
            "us_wall_per_op": round(best / ops * 1e6, 2),
        }
    return {
        "config": {"max_tiles": max_tiles, "repeats": repeats,
                   "systems": [cls.name for cls in chosen],
                   "workloads": sorted(bench_workloads(max_tiles))},
        "simulated": simulated,
        "wall": wall,
    }


def format_bench(bench: Dict) -> str:
    """Human-readable table of the wall section."""
    from repro.analysis.report import format_table
    rows = []
    for key in sorted(bench["wall"]):
        cell = bench["wall"][key]
        rows.append([key, f"{cell['wall_s']:.3f}", str(cell["ops"]),
                     f"{cell['ops_per_s']:.0f}",
                     f"{cell['us_wall_per_op']:.1f}"])
    return format_table(
        ["workload/system", "wall (s)", "ops", "ops/s", "us wall/op"],
        rows, title="Hot-path wall-clock benchmark")


def bench_json(bench: Dict) -> str:
    """Byte-stable JSON rendering (sorted keys, fixed separators)."""
    return json.dumps(bench, indent=1, sort_keys=True) + "\n"
