"""§7.2's object-construction claim.

"Using building blocks, [the] software-only implementation allows the
NDS software to speed up the process of building multi-dimensional
objects by 1.52× on average." We measure the *host CPU work per byte
delivered* — issue-path plus marshalling-copy busy time — for baseline
tile marshalling vs software-NDS block assembly.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import MICRO_ELEM, MICRO_N, fresh_baseline, \
    fresh_software, once
from repro.analysis import PAPER, comparison_row, format_table


def _host_cpu_cost(system, origin, extents) -> float:
    system.reset_time()
    before = (system.cpu.issue_line.busy_time
              + system.cpu.copy_lines.busy_time())
    result = system.read_tile("m", origin, extents)
    after = (system.cpu.issue_line.busy_time
             + system.cpu.copy_lines.busy_time())
    return (after - before) / result.useful_bytes


def test_sec72_object_build_speedup(benchmark):
    def run():
        baseline = fresh_baseline()
        software = fresh_software()
        for system in (baseline, software):
            system.ingest("m", (MICRO_N, MICRO_N), MICRO_ELEM)
        tile = ((0, 0), (1024, 1024))
        return (_host_cpu_cost(baseline, *tile),
                _host_cpu_cost(software, *tile))

    base_cost, sw_cost = once(benchmark, run)
    speedup = base_cost / sw_cost
    print()
    print(format_table(
        ["system", "host CPU ns/KiB delivered"],
        [["baseline (marshalling)", f"{base_cost * 1e9 * 1024:.0f}"],
         ["software NDS (block assembly)", f"{sw_cost * 1e9 * 1024:.0f}"]],
        title="Sec 7.2: host object-construction cost"))
    print(format_table(
        ["anchor", "paper", "measured", "delta"],
        [comparison_row("object-build speedup",
                        PAPER.object_build_speedup, speedup)]))
    # Shape: building from blocks costs the host less CPU per byte than
    # marshalling rows (the paper measures 1.52x).
    assert speedup > 1.1
    assert speedup < 5.0
