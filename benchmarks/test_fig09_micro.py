"""Figure 9 — microbenchmarks: row / column / submatrix fetch and write
bandwidth for the baseline SSD, software NDS and hardware NDS (§7.1).

Paper anchors: baseline row fetch ≈ 4.3 GB/s; software NDS ≈ 3.8 GB/s;
hardware NDS ≈ baseline; baseline column fetch ≤ 600 MB/s while NDS
matches a column-store baseline; NDS dominates submatrix fetches;
baseline write 281 MB/s with software −30 % and hardware −17 %.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (MICRO_ELEM, MICRO_N, fresh_baseline,
                                 fresh_hardware, fresh_software, once)
from repro.analysis import PAPER, comparison_row, format_table


def _bandwidths(systems, origin_extents):
    out = {}
    for name, system in systems.items():
        system.reset_time()
        result = system.read_tile("m", *origin_extents)
        out[name] = result.effective_bandwidth
    return out


class TestFig9aRowFetch:
    def test_fig9a_row_fetch(self, micro_systems, benchmark):
        heights = [128, 256, 512, 1024]
        series = once(benchmark, lambda: {
            h: _bandwidths(micro_systems, ((0, 0), (h, MICRO_N)))
            for h in heights})
        rows = [[f"{h}x{MICRO_N}"]
                + [f"{series[h][k] / 1e9:.2f}" for k in
                   ("baseline", "software", "hardware")]
                for h in heights]
        print()
        print(format_table(["rows fetched", "baseline GB/s",
                            "software GB/s", "hardware GB/s"], rows,
                           title="Fig 9(a) row fetch effective bandwidth"))
        largest = series[heights[-1]]
        print(format_table(
            ["anchor", "paper", "measured", "delta"],
            [comparison_row("baseline GB/s", PAPER.baseline_row_read_gbs,
                            largest["baseline"] / 1e9),
             comparison_row("software GB/s", PAPER.software_row_read_gbs,
                            largest["software"] / 1e9)]))
        # Shape: hardware NDS ~ baseline; software NDS below both but
        # within ~15 % of its 3.8 GB/s anchor.
        assert largest["hardware"] == pytest.approx(largest["baseline"],
                                                    rel=0.15)
        assert largest["software"] < largest["baseline"]
        assert largest["software"] / 1e9 == pytest.approx(
            PAPER.software_row_read_gbs, rel=0.15)
        assert largest["baseline"] / 1e9 == pytest.approx(
            PAPER.baseline_row_read_gbs, rel=0.20)


class TestFig9bColumnFetch:
    def test_fig9b_column_fetch(self, micro_systems, benchmark):
        widths = [128, 256, 512]
        series = once(benchmark, lambda: {
            w: _bandwidths(micro_systems, ((0, 0), (MICRO_N, w)))
            for w in widths})
        # the paper's fourth bar: a column-store baseline
        col_store = fresh_baseline()
        col_store.ingest("m", (MICRO_N, MICRO_N), MICRO_ELEM, layout="col")
        col_baseline = {}
        for w in widths:
            col_store.reset_time()
            col_baseline[w] = col_store.read_tile(
                "m", (0, 0), (MICRO_N, w)).effective_bandwidth
        rows = [[f"{MICRO_N}x{w}",
                 f"{series[w]['baseline'] / 1e6:.0f}",
                 f"{col_baseline[w] / 1e9:.2f}",
                 f"{series[w]['software'] / 1e9:.2f}",
                 f"{series[w]['hardware'] / 1e9:.2f}"]
                for w in widths]
        print()
        print(format_table(
            ["cols fetched", "row-store MB/s", "col-store GB/s",
             "software GB/s", "hardware GB/s"], rows,
            title="Fig 9(b) column fetch effective bandwidth"))
        largest = series[widths[-1]]
        # Shape: row-store baseline collapses (paper: <= 600 MB/s at our
        # run-length scale it sits near 1 GB/s); NDS stays within ~20 %
        # of the column-store baseline.
        assert largest["baseline"] < 0.35 * largest["hardware"]
        assert largest["hardware"] == pytest.approx(
            col_baseline[widths[-1]], rel=0.25)
        for w in widths:
            assert series[w]["software"] > 2.5 * series[w]["baseline"]


class TestFig9cSubmatrixFetch:
    def test_fig9c_submatrix_fetch(self, micro_systems, benchmark):
        dims = [512, 1024, 2048]
        series = once(benchmark, lambda: {
            d: _bandwidths(micro_systems, ((0, 0), (d, d)))
            for d in dims})
        rows = [[f"{d}x{d}"]
                + [f"{series[d][k] / 1e9:.2f}" for k in
                   ("baseline", "software", "hardware")]
                for d in dims]
        print()
        print(format_table(["submatrix", "baseline GB/s", "software GB/s",
                            "hardware GB/s"], rows,
                           title="Fig 9(c) submatrix fetch effective bandwidth"))
        # Shape: NDS significantly outperforms the baseline regardless of
        # implementation (paper §7.1), and the gap narrows as submatrices
        # grow (longer contiguous runs amortize baseline request costs).
        for d in dims:
            assert series[d]["software"] > 1.3 * series[d]["baseline"]
            assert series[d]["hardware"] > 1.5 * series[d]["baseline"]
        assert (series[dims[0]]["hardware"] / series[dims[0]]["baseline"]
                > series[dims[-1]]["hardware"] / series[dims[-1]]["baseline"])


class TestFig9dWrite:
    def test_fig9d_write(self, benchmark):
        def run():
            out = {}
            for name, factory in [("baseline", fresh_baseline),
                                  ("software", fresh_software),
                                  ("hardware", fresh_hardware)]:
                system = factory()
                result = system.ingest("m", (MICRO_N, MICRO_N), MICRO_ELEM)
                out[name] = result.effective_bandwidth
            # column-store baseline writes the transposed layout: same
            # sequential stream, same bandwidth
            col = fresh_baseline()
            out["baseline-col"] = col.ingest(
                "m", (MICRO_N, MICRO_N), MICRO_ELEM,
                layout="col").effective_bandwidth
            return out

        bw = once(benchmark, run)
        print()
        print(format_table(
            ["system", "write MB/s", "vs baseline"],
            [[k, f"{v / 1e6:.0f}", f"{v / bw['baseline']:.2f}x"]
             for k, v in bw.items()],
            title="Fig 9(d) write bandwidth"))
        print(format_table(
            ["anchor", "paper", "measured", "delta"],
            [comparison_row("baseline MB/s", PAPER.baseline_write_mbs,
                            bw["baseline"] / 1e6),
             comparison_row("software penalty",
                            PAPER.software_write_penalty,
                            1 - bw["software"] / bw["baseline"]),
             comparison_row("hardware penalty",
                            PAPER.hardware_write_penalty,
                            1 - bw["hardware"] / bw["baseline"])]))
        assert bw["baseline-col"] == pytest.approx(bw["baseline"], rel=0.02)
        assert 1 - bw["software"] / bw["baseline"] == pytest.approx(
            PAPER.software_write_penalty, abs=0.08)
        assert 1 - bw["hardware"] / bw["baseline"] == pytest.approx(
            PAPER.hardware_write_penalty, abs=0.08)
        assert bw["hardware"] > bw["software"]
