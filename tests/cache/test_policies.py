"""Unit tests for the pluggable eviction policies."""

import pytest

from repro.cache import CacheConfig
from repro.cache.policy import (AdmissionLruPolicy, ClockPolicy, LruPolicy,
                                make_policy)


class TestLru:
    def test_victim_is_least_recently_used(self):
        policy = LruPolicy()
        for key in "abc":
            policy.on_insert(key)
        assert policy.victim() == "a"

    def test_hit_refreshes_recency(self):
        policy = LruPolicy()
        for key in "abc":
            policy.on_insert(key)
        policy.on_hit("a")
        assert policy.victim() == "b"

    def test_remove_is_idempotent(self):
        policy = LruPolicy()
        policy.on_insert("a")
        policy.remove("a")
        policy.remove("a")
        assert len(policy) == 0

    def test_admits_everything(self):
        policy = LruPolicy()
        assert policy.admit("never-seen")


class TestClock:
    def test_unreferenced_entry_is_victim(self):
        policy = ClockPolicy()
        for key in "abc":
            policy.on_insert(key)
        assert policy.victim() == "a"

    def test_second_chance_skips_referenced(self):
        policy = ClockPolicy()
        for key in "abc":
            policy.on_insert(key)
        policy.on_hit("a")
        # the hand clears a's bit, moves it behind c, and lands on b
        assert policy.victim() == "b"

    def test_reference_bit_is_consumed(self):
        policy = ClockPolicy()
        for key in "ab":
            policy.on_insert(key)
        policy.on_hit("a")
        assert policy.victim() == "b"
        policy.remove("b")
        # a's bit was cleared by the first sweep: next victim is a
        assert policy.victim() == "a"


class TestAdmission:
    def test_first_touch_is_rejected(self):
        policy = AdmissionLruPolicy(window=4)
        assert not policy.admit("x")

    def test_second_touch_is_admitted(self):
        policy = AdmissionLruPolicy(window=4)
        policy.admit("x")
        assert policy.admit("x")

    def test_window_bounds_the_doorkeeper(self):
        policy = AdmissionLruPolicy(window=2)
        policy.admit("x")
        policy.admit("y")
        policy.admit("z")  # pushes x out of the seen window
        assert not policy.admit("x")

    def test_scan_resistance(self):
        """A one-touch scan never enters the cache; the re-touched hot
        key does."""
        policy = AdmissionLruPolicy(window=64)
        admitted = [key for key in range(32) if policy.admit(key)]
        assert admitted == []
        assert policy.admit(7)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("lru", LruPolicy),
                                          ("clock", ClockPolicy),
                                          ("admission", AdmissionLruPolicy)])
    def test_make_policy(self, name, cls):
        policy = make_policy(CacheConfig(capacity_bytes=1024, policy=name))
        assert type(policy) is cls
        assert policy.name == name

    def test_admission_window_threads_through(self):
        policy = make_policy(CacheConfig(capacity_bytes=1024,
                                         policy="admission",
                                         admission_window=7))
        assert policy.window == 7

    def test_unknown_policy_rejected_at_config_time(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=1024, policy="belady")

    @pytest.mark.parametrize("kwargs", [{"capacity_bytes": 0},
                                        {"dirty_max": 0},
                                        {"prefetch": -1},
                                        {"admission_window": 0}])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CacheConfig(**kwargs)
