#!/usr/bin/env python3
"""Multi-tenant QoS on one NDS device: shares, SLOs, hard isolation.

Two tenants — GEMM (weight 3) and BFS (weight 1) — co-run on a
software-NDS device under four regimes:

* **solo**: each tenant alone (the interference-free baseline);
* **shared**: plain round-robin arbitration, no QoS — both tenants
  spread across every flash channel and queue behind each other;
* **weighted**: 3:1 weighted fair scheduling — the scheduler serves
  the backlogged stream with the smallest virtual time
  (service_time / weight), shifting slowdown onto the light tenant;
* **sharded**: each tenant's datasets pinned to a disjoint channel
  subset by the STL allocator — zero shared channels, FlashBlox-style
  hard isolation (GC and parity groups respect the boundary too).

The run is fully deterministic: two invocations produce byte-identical
trace and metrics JSON (the CI determinism job diffs them). ``--seed``
is recorded in the output for provenance; the sweep itself derives all
randomness from fixed internal seeds.

Run:  python examples/qos_isolation.py [--seed N] [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis.isolation import isolation_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0xF417)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument("--latency-target", type=float, default=5e-4,
                        help="per-op SLO latency target in seconds")
    args = parser.parse_args()

    sweep = isolation_sweep(latency_target=args.latency_target)
    traces = sweep.pop("traces")

    print(f"== isolation sweep on {sweep['profile']} "
          f"(weights {sweep['weight']:.0f}:1, qd {sweep['queue_depth']}) ==")
    for name, makespan in sorted(sweep["solo_makespan"].items()):
        print(f"  solo {name:5s} io makespan {makespan * 1e6:8.1f} us")
    for key in ("shared", "weighted", "sharded"):
        scenario = sweep["scenarios"][key]
        overlap = scenario["overlap"]
        print(f"\n-- {key} ({scenario['arbitration']}) --")
        for name, stream in sorted(scenario["streams"].items()):
            slo = stream.get("slo")
            slo_txt = (f"  slo {slo['met']}/{slo['met'] + slo['violated']} met"
                       if slo else "")
            print(f"  {name:5s} slowdown {stream['slowdown']:5.2f}x  "
                  f"p95 {stream['p95_io_latency'] * 1e6:7.1f} us  "
                  f"service {stream['service_time'] * 1e6:7.1f} us{slo_txt}")
        print(f"  shared channels: {overlap['shared_channels'] or 'none'}"
              f"  (contended busy "
              f"{overlap['shared_busy_time'] * 1e6:.1f} us)")

    args.out_dir.mkdir(parents=True, exist_ok=True)
    metrics_path = args.out_dir / "qos_isolation.metrics.json"
    metrics_path.write_text(json.dumps(
        {"seed": args.seed, "latency_target": args.latency_target,
         "sweep": sweep}, sort_keys=True, indent=2))
    written = [metrics_path]
    for key, trace in traces.items():
        trace_path = args.out_dir / f"qos_isolation.{key}.trace.json"
        trace_path.write_text(json.dumps(trace.to_chrome(), sort_keys=True))
        written.append(trace_path)
    slo_marks = sum(len(t.instants("slo")) for t in traces.values())
    print(f"\nwrote {', '.join(p.name for p in written)} "
          f"({slo_marks} SLO-violation marks in traces)")


if __name__ == "__main__":
    main()
