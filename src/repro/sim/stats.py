"""Statistics accounting shared by all timed components.

Every timed operation in the model returns or accumulates into a
:class:`StatSet`. The end-to-end systems report effective bandwidth,
per-resource busy time and command counts through these objects, which
the benchmark harnesses then turn into the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

__all__ = ["StatSet", "BandwidthSample", "effective_bandwidth"]


def effective_bandwidth(num_bytes: int, elapsed_seconds: float) -> float:
    """Bytes per second; 0 for a degenerate interval."""
    if elapsed_seconds <= 0:
        return 0.0
    return num_bytes / elapsed_seconds


@dataclass
class BandwidthSample:
    """One measured transfer: how many bytes moved in how long."""

    num_bytes: int
    elapsed_seconds: float

    @property
    def bytes_per_second(self) -> float:
        return effective_bandwidth(self.num_bytes, self.elapsed_seconds)

    @property
    def gib_per_second(self) -> float:
        return self.bytes_per_second / 2**30

    @property
    def mib_per_second(self) -> float:
        return self.bytes_per_second / 2**20


@dataclass
class StatSet:
    """A bag of named counters plus named time accumulators.

    ``counters`` count discrete events (I/O commands issued, pages read,
    B-tree nodes visited). ``times`` accumulate busy seconds per logical
    resource ("host_cpu", "link", "flash", ...). Merging is additive so
    per-request stats can be rolled up into per-run stats.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    times: Dict[str, float] = field(default_factory=dict)

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative time for {name}: {seconds}")
        self.times[name] = self.times.get(name, 0.0) + seconds

    def merge(self, other: "StatSet") -> "StatSet":
        for key, value in other.counters.items():
            self.count(key, value)
        for key, value in other.times.items():
            self.add_time(key, value)
        return self

    @classmethod
    def merged(cls, parts: Iterable["StatSet"]) -> "StatSet":
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    def get_count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def get_time(self, name: str) -> float:
        return self.times.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Flat view for reporting (counter names as-is, times suffixed)."""
        flat: Dict[str, float] = dict(self.counters)
        for key, value in self.times.items():
            flat[f"{key}_s"] = value
        return flat
