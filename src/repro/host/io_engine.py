"""Queue-depth-limited I/O request scheduling.

This engine reproduces the end-to-end request flow of paper Figure 7(a)
for the baseline system (and the LightNVM flow of Figure 7(b)):

  host software stack → link command → device controller → flash →
  link data transfer → (optional) host placement copy.

A queue depth > 1 lets consecutive requests overlap, so the steady
state is limited by the slowest resource — exactly how a real NVMe
queue pair behaves. All resources are FCFS timelines, so the analytic
schedule equals the event-driven one. The in-flight limit itself is
the runtime's :class:`~repro.runtime.scheduler.QueueDepthWindow` — the
same primitive that gates tenant streams in the request scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.ftl.ssd import BaselineSSD
from repro.host.cpu import HostCpu
from repro.interconnect.link import Link
from repro.runtime.scheduler import QueueDepthWindow
from repro.sim.resources import Timeline
from repro.sim.stats import StatSet

__all__ = ["IoRequest", "IoRunResult", "HostIoEngine"]


@dataclass
class IoRequest:
    """One host-visible I/O request.

    Attributes
    ----------
    lpns:
        Logical pages the device touches for this request.
    useful_bytes:
        Bytes the application actually wanted (may be less than the
        pages fetched — that difference is wasted device bandwidth).
    placement_chunk:
        If not None, the host CPU copies the useful bytes from the DMA
        buffer into their final location in chunks of this many bytes
        (0 = one contiguous copy). None models direct DMA placement.
    payload:
        Optional functional data for writes (one array per LPN).
    """

    lpns: Sequence[int]
    useful_bytes: int
    placement_chunk: Optional[int] = None
    payload: Optional[Sequence[np.ndarray]] = None


@dataclass
class IoRunResult:
    """Aggregate outcome of a batch of requests."""

    start_time: float
    end_time: float
    completions: List[float] = field(default_factory=list)
    useful_bytes: int = 0
    fetched_bytes: int = 0
    stats: StatSet = field(default_factory=StatSet)
    data: List[Optional[List[np.ndarray]]] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time

    @property
    def effective_bandwidth(self) -> float:
        """Application-visible bytes/second."""
        if self.elapsed <= 0:
            return 0.0
        return self.useful_bytes / self.elapsed


class HostIoEngine:
    """Drives a :class:`BaselineSSD` through a link with host CPU costs."""

    def __init__(self, ssd: BaselineSSD, link: Link, cpu: HostCpu,
                 queue_depth: int = 32) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.ssd = ssd
        self.link = link
        self.cpu = cpu
        self.queue_depth = queue_depth
        self.controller_line = Timeline("device_ctrl")
        self.controller_command_time = ssd.profile.controller_command_time
        #: optional per-layer span recorder (set via the owning
        #: system's ``set_trace``)
        self.trace = None
        #: optional metrics registry (set via ``set_metrics``)
        self.metrics = None

    def _reserve_controller(self, earliest: float) -> float:
        start, end = self.controller_line.reserve(
            earliest, self.controller_command_time)
        if self.trace is not None:
            self.trace.span("device_ctrl", start, end, name="ftl_map")
        if self.metrics is not None:
            self.metrics.observe("ftl.map", end - start)
        return end

    # ------------------------------------------------------------------
    def run_reads(self, requests: Sequence[IoRequest], start_time: float = 0.0,
                  with_data: bool = False) -> IoRunResult:
        """Execute read requests in order under the queue-depth limit."""
        result = IoRunResult(start_time=start_time, end_time=start_time)
        window = QueueDepthWindow(self.queue_depth)
        for request in requests:
            earliest = window.earliest(start_time)
            issued = self.cpu.issue_io(max(earliest, start_time))
            ctrl_done = self._reserve_controller(issued)
            device = self.ssd.read_lpns(request.lpns, ctrl_done,
                                        with_data=with_data)
            fetched = len(request.lpns) * self.ssd.page_size
            transfer = self.link.transfer(fetched, device.end_time)
            done = transfer.end_time
            if request.placement_chunk is not None:
                done = self.cpu.copy(request.useful_bytes, done,
                                     request.placement_chunk)
            window.complete(done)
            result.completions.append(done)
            result.useful_bytes += request.useful_bytes
            result.fetched_bytes += fetched
            result.stats.merge(device.stats)
            result.data.append(device.data if with_data else None)
            if done > result.end_time:
                result.end_time = done
        result.stats.count("io_requests", len(requests))
        return result

    def run_writes(self, requests: Sequence[IoRequest],
                   start_time: float = 0.0) -> IoRunResult:
        """Execute write requests in order under the queue-depth limit."""
        result = IoRunResult(start_time=start_time, end_time=start_time)
        window = QueueDepthWindow(self.queue_depth)
        for request in requests:
            earliest = window.earliest(start_time)
            issued = self.cpu.issue_io(max(earliest, start_time))
            if request.placement_chunk is not None:
                # Host gathers scattered application data into the DMA
                # buffer before the transfer (serialization cost, [P1]).
                issued = self.cpu.copy(request.useful_bytes, issued,
                                       request.placement_chunk)
            sent = len(request.lpns) * self.ssd.page_size
            transfer = self.link.transfer(sent, issued)
            ctrl_done = self._reserve_controller(transfer.end_time)
            device = self.ssd.write_lpns(request.lpns, ctrl_done,
                                         data=request.payload)
            done = device.end_time
            window.complete(done)
            result.completions.append(done)
            result.useful_bytes += request.useful_bytes
            result.fetched_bytes += sent
            result.stats.merge(device.stats)
            if done > result.end_time:
                result.end_time = done
        result.stats.count("io_requests", len(requests))
        return result

    def reset_time(self) -> None:
        self.ssd.reset_time()
        self.link.reset_time()
        self.cpu.reset_time()
        self.controller_line.reset()
