"""Device-count scaling sweep over the cluster translation layer.

Runs the same tiled read workload against pools of 1/2/4/8 simulated
SSDs and reports aggregate goodput (useful bytes / makespan) per
(system, device count) cell — the scale-out argument for the SALSA-style
host translation layer: declustered extents put independent tile reads
on independent devices, so goodput grows with the pool.

Two capacity modes keep the comparison honest:

* ``"fixed-per-device"`` — every pool member is the full profile; an
  8-device pool has 8× the capacity (the scale-*out* story);
* ``"fixed-total"`` — each member holds ``1/N`` of the blocks via
  :meth:`~repro.nvm.profiles.DeviceProfile.scaled_capacity`, so total
  capacity is constant and only the parallelism varies (the
  declustering story).

Everything is deterministic and the JSON rendering is byte-stable
(sorted keys, fixed separators) — the CI ``scaleout-determinism`` job
runs the sweep twice and diffs the files.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.nvm.profiles import CONSUMER_SSD, DeviceProfile
from repro.runtime.tileop import TileOp
from repro.workloads.base import TileFetch, Workload, WorkloadDataset

__all__ = ["DEVICE_COUNTS", "CAPACITY_MODES", "ScanWorkload", "run_cell",
           "run_co_cell", "scaleout_sweep", "sweep_json", "format_sweep"]

DEVICE_COUNTS = (1, 2, 4, 8)
CAPACITY_MODES = ("fixed-per-device", "fixed-total")

_SWEEP_SYSTEMS = ("baseline", "software-nds", "hardware-nds",
                  "software-oracle")


class ScanWorkload(Workload):
    """Full-matrix tile scan with uniform row coverage.

    Reads every ``tile``×``tile`` tile of one ``n``×``n`` matrix
    exactly once, iterating *down the columns* so consecutive fetches
    land in different row bands — and therefore, once the matrix is
    declustered, on different devices. GEMM's inner-product order keeps
    its A-tile reads pinned to one row band, which hides pool
    parallelism; the scan is the fair scale-out probe.
    """

    name = "scan"
    category = "microbenchmark"
    data_dim_label = "2D"
    kernel_dim_label = "2D"

    def __init__(self, n: int = 1024, tile: int = 128,
                 element_size: int = 4, name: str = "scan",
                 dataset: str = "S") -> None:
        if n % tile != 0:
            raise ValueError("tile must evenly divide n")
        self.n = n
        self.tile = tile
        self.element_size = element_size
        self.name = name
        self.dataset_name = dataset

    def datasets(self) -> List[WorkloadDataset]:
        return [WorkloadDataset(self.dataset_name, (self.n, self.n),
                                self.element_size)]

    def tile_plan(self) -> List[TileFetch]:
        grid = self.n // self.tile
        return [TileFetch(self.dataset_name, (i * self.tile, j * self.tile),
                          (self.tile, self.tile))
                for j in range(grid) for i in range(grid)]

    def kernel_time(self, kernels, fetch) -> float:
        return 0.0


def _profile_for(profile: DeviceProfile, devices: int, mode: str):
    if mode == "fixed-per-device":
        return profile
    if mode == "fixed-total":
        return profile.scaled_capacity(1.0 / devices)
    raise ValueError(f"unknown capacity mode {mode!r}; pick from "
                     f"{CAPACITY_MODES}")


def run_cell(system_name: str, devices: int,
             profile: DeviceProfile = CONSUMER_SSD,
             mode: str = "fixed-per-device",
             workload=None, queue_depth: int = 8) -> Dict[str, object]:
    """One sweep cell: run ``workload`` on ``system_name`` over a
    ``devices``-member pool and measure aggregate goodput."""
    from repro.obs.report import SYSTEM_FACTORIES
    from repro.workloads.runner import ingest_datasets

    factory = SYSTEM_FACTORIES.get(system_name)
    if factory is None:
        raise ValueError(f"unknown system {system_name!r}; pick from "
                         f"{sorted(SYSTEM_FACTORIES)}")
    if workload is None:
        workload = ScanWorkload()
    member_profile = _profile_for(profile, devices, mode)
    system = (factory(member_profile) if devices <= 1
              else factory(member_profile, devices=devices))
    ingest_datasets(workload, system)
    system.reset_time()
    system._reset_runtime()

    scheduler = system.scheduler
    scheduler.stream(workload.name, queue_depth)
    for fetch in workload.tile_plan():
        scheduler.submit(TileOp.read(fetch.dataset, fetch.origin,
                                     fetch.extents, submit_time=0.0,
                                     stream=workload.name))
    executed = scheduler.drain()
    useful = sum(op.result.useful_bytes for op in executed)
    fetched = sum(op.result.fetched_bytes for op in executed)
    makespan = max((op.result.end_time for op in executed), default=0.0)
    cell: Dict[str, object] = {
        "system": system_name,
        "devices": devices,
        "mode": mode,
        "ops": len(executed),
        "useful_bytes": useful,
        "fetched_bytes": fetched,
        "makespan_seconds": makespan,
        "goodput_bytes_per_second": useful / makespan if makespan > 0
        else 0.0,
    }
    device_report = scheduler.device_report()
    if device_report:
        cell["device_subops"] = {name: entry["subops"]
                                 for name, entry in device_report.items()}
    return cell


def run_co_cell(system_name: str, devices: int,
                profile: DeviceProfile = CONSUMER_SSD,
                mode: str = "fixed-per-device",
                tenants: int = 2,
                workloads=None,
                queue_depth: int = 8,
                arbitration: str = "round_robin") -> Dict[str, object]:
    """One tenant co-run cell: ``tenants`` scan workloads share one
    ``devices``-member pool through :func:`co_run_workloads`, and the
    cell reports per-tenant plus aggregate goodput — the multi-tenant
    analogue of :func:`run_cell`, quantifying whether pool parallelism
    absorbs the co-tenant or the tenants serialize on shared devices."""
    from repro.obs.report import SYSTEM_FACTORIES
    from repro.workloads.runner import co_run_workloads

    factory = SYSTEM_FACTORIES.get(system_name)
    if factory is None:
        raise ValueError(f"unknown system {system_name!r}; pick from "
                         f"{sorted(SYSTEM_FACTORIES)}")
    if tenants < 2:
        raise ValueError("a co-run needs at least 2 tenants")
    if workloads is None:
        workloads = [ScanWorkload(name=f"scan{t}", dataset=f"S{t}")
                     for t in range(tenants)]
    member_profile = _profile_for(profile, devices, mode)
    system = (factory(member_profile) if devices <= 1
              else factory(member_profile, devices=devices))
    result = co_run_workloads(workloads, system, queue_depth=queue_depth,
                              arbitration=arbitration)
    tiles = {w.name: len(w.tile_plan()) for w in workloads}
    tile_bytes = {w.name: w.tile_bytes(w.tile_plan()[0]) for w in workloads}
    streams: Dict[str, Dict[str, object]] = {}
    total_useful = 0
    for name in sorted(result.streams):
        stream = result.streams[name]
        useful = tiles[name] * tile_bytes[name]
        total_useful += useful
        streams[name] = {
            "tiles": stream.tiles,
            "io_makespan": stream.io_makespan,
            "mean_io_latency": stream.mean_io_latency,
            "p95_io_latency": stream.p95_io_latency,
            "goodput_bytes_per_second": (useful / stream.io_makespan
                                         if stream.io_makespan > 0 else 0.0),
        }
    makespan = result.io_makespan
    cell: Dict[str, object] = {
        "system": system_name,
        "devices": devices,
        "mode": mode,
        "tenants": len(workloads),
        "arbitration": arbitration,
        "useful_bytes": total_useful,
        "makespan_seconds": makespan,
        "goodput_bytes_per_second": (total_useful / makespan
                                     if makespan > 0 else 0.0),
        "streams": streams,
    }
    if result.devices:
        cell["device_subops"] = {name: entry["subops"]
                                 for name, entry in result.devices.items()}
    return cell


def scaleout_sweep(device_counts: Sequence[int] = DEVICE_COUNTS,
                   systems: Sequence[str] = _SWEEP_SYSTEMS,
                   modes: Sequence[str] = CAPACITY_MODES,
                   profile: DeviceProfile = CONSUMER_SSD,
                   workload=None,
                   queue_depth: int = 8,
                   tenants: int = 1) -> Dict[str, object]:
    """The full sweep: every (mode, system, device count) cell plus
    per-cell speedup relative to the same system's 1-device run.

    With ``tenants > 1`` every cell becomes a :func:`run_co_cell`
    tenant co-run over the pool (``workload`` is ignored — each tenant
    scans its own matrix); speedups still compare against the same
    system's 1-device co-run."""
    sweep: Dict[str, object] = {
        "profile": profile.name,
        "queue_depth": queue_depth,
        "device_counts": [int(n) for n in device_counts],
        "modes": list(modes),
        "cells": [],
    }
    if tenants > 1:
        sweep["tenants"] = tenants
    baselines: Dict[tuple, float] = {}
    for mode in modes:
        for system_name in systems:
            for devices in device_counts:
                if tenants > 1:
                    cell = run_co_cell(system_name, int(devices),
                                       profile=profile, mode=mode,
                                       tenants=tenants,
                                       queue_depth=queue_depth)
                else:
                    cell = run_cell(system_name, int(devices),
                                    profile=profile, mode=mode,
                                    workload=workload,
                                    queue_depth=queue_depth)
                key = (mode, system_name)
                goodput = cell["goodput_bytes_per_second"]
                if int(devices) == 1:
                    baselines[key] = goodput
                reference = baselines.get(key)
                cell["speedup_vs_single"] = (
                    goodput / reference if reference else 0.0)
                sweep["cells"].append(cell)
    return sweep


def sweep_json(sweep: Dict[str, object]) -> str:
    """Byte-stable JSON rendering (sorted keys, fixed separators)."""
    return json.dumps(sweep, sort_keys=True, indent=2,
                      separators=(",", ": ")) + "\n"


def format_sweep(sweep: Dict[str, object]) -> str:
    """Human-readable table per capacity mode."""
    from repro.analysis.report import format_table

    lines = []
    for mode in sweep["modes"]:
        cells = [c for c in sweep["cells"] if c["mode"] == mode]
        rows = [[c["system"], str(c["devices"]),
                 f"{c['goodput_bytes_per_second'] / 1e9:.3f}",
                 f"{c['makespan_seconds'] * 1e6:.1f}",
                 f"{c['speedup_vs_single']:.2f}x"]
                for c in cells]
        lines.append(format_table(
            ["system", "devices", "goodput (GB/s)", "makespan (us)",
             "speedup"], rows,
            title=f"scale-out sweep — {mode} capacity"))
        lines.append("")
    return "\n".join(lines)
