"""Multi-device NDS: a SALSA-style host layer over a pool of SSDs.

The package turns the single-device simulator into a scale-out stack
without touching the device model: each pool member is a complete,
independently-simulated storage system, and a thin host translation
layer declusters datasets across them, adds cross-device parity, and
coordinates garbage collection and hot-extent migration.
"""

from repro.cluster.layout import (ClusterLayout, Extent, ParityExtent,
                                  build_layout, partition_rows)
from repro.cluster.pool import (DEFAULT_DEVICE_QUEUE_DEPTH, DeviceHandle,
                                DevicePool)
from repro.cluster.sharding import PoolShardSpec
from repro.cluster.translation import (ClusterTranslationLayer,
                                       GcCoordinator, RebalancePolicy,
                                       split_fault_config)

__all__ = [
    "ClusterLayout",
    "ClusterTranslationLayer",
    "DEFAULT_DEVICE_QUEUE_DEPTH",
    "DeviceHandle",
    "DevicePool",
    "Extent",
    "GcCoordinator",
    "ParityExtent",
    "PoolShardSpec",
    "RebalancePolicy",
    "build_layout",
    "partition_rows",
    "split_fault_config",
]
