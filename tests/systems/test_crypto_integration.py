"""§5.3.3 end to end: an AES engine in the hardware NDS controller."""

from repro.core import BlockCipherModel
from repro.nvm import PAPER_PROTOTYPE
from repro.systems import HardwareNdsSystem


class TestCipherInTheDatapath:
    def _bandwidth(self, cipher):
        system = HardwareNdsSystem(PAPER_PROTOTYPE, bb_override=(256, 256),
                                   cipher=cipher)
        system.ingest("m", (2048, 2048), 8)
        system.reset_time()
        return system.read_tile("m", (0, 0), (512, 2048)).effective_bandwidth

    def test_fast_engine_barely_costs(self):
        """§5.3.3's claim: NDS 'functions well regardless of where the
        system performs cryptography' — a line-rate engine costs a few
        percent."""
        plain = self._bandwidth(None)
        encrypted = self._bandwidth(BlockCipherModel(throughput=8e9))
        assert encrypted < plain
        assert encrypted > 0.85 * plain

    def test_slow_engine_becomes_the_bottleneck(self):
        plain = self._bandwidth(None)
        throttled = self._bandwidth(BlockCipherModel(throughput=1e9))
        assert throttled < 0.5 * plain

    def test_write_path_pays_encryption(self):
        def write_bw(cipher):
            system = HardwareNdsSystem(PAPER_PROTOTYPE,
                                       bb_override=(256, 256),
                                       cipher=cipher)
            return system.ingest("m", (2048, 2048), 8).effective_bandwidth

        assert write_bw(BlockCipherModel(throughput=8e9)) <= write_bw(None)
