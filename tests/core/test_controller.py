"""Tests for the NDS controller pipeline model (§5.3.2)."""

import pytest

from repro.core import ControllerTiming, NdsController


class TestStages:
    def test_commands_serialize_on_the_handler(self):
        ctrl = NdsController(ControllerTiming(command_handle=5e-6))
        first = ctrl.handle_command(0.0)
        second = ctrl.handle_command(0.0)
        assert first == pytest.approx(5e-6)
        assert second == pytest.approx(10e-6)

    def test_translate_cost_scales_with_nodes_and_blocks(self):
        timing = ControllerTiming(translate_per_node=1e-6,
                                  translate_per_block=0.5e-6)
        ctrl = NdsController(timing)
        end = ctrl.translate(0.0, nodes_visited=3, blocks=4)
        assert end == pytest.approx(3e-6 + 2e-6)

    def test_stages_are_independent_resources(self):
        ctrl = NdsController()
        ctrl.handle_command(0.0)
        # the translator is free even while the command handler was busy
        end = ctrl.translate(0.0, 1, 1)
        assert end < ctrl.timing.command_handle + 1e-5

    def test_allocate_and_assemble(self):
        timing = ControllerTiming(allocate_per_unit=2e-6,
                                  assemble_per_page=1e-6,
                                  assemble_bandwidth=1e9)
        ctrl = NdsController(timing)
        assert ctrl.allocate(0.0, 4) == pytest.approx(8e-6)
        assert ctrl.assemble(0.0, 1000, 2) == pytest.approx(2e-6 + 1e-6)

    def test_reset(self):
        ctrl = NdsController()
        ctrl.handle_command(0.0)
        ctrl.reset_time()
        assert ctrl.command_line.free_at == 0.0


class TestPaperCalibration:
    def test_worst_case_read_latency_near_17us(self):
        """§7.3: hardware NDS adds ~17 µs for a worst-case single-page
        request."""
        timing = ControllerTiming()
        latency = timing.worst_case_read_latency(tree_levels=3)
        assert latency == pytest.approx(17e-6, rel=0.3)

    def test_latency_below_nand_page_read(self):
        """§7.3: the adder is shorter than (or the same order as) a NAND
        page read (30–100 µs)."""
        assert ControllerTiming().worst_case_read_latency(3) < 100e-6
