"""Tests for the software-oracle architecture (§7.2)."""

import numpy as np
import pytest

from repro.nvm import TINY_TEST
from repro.systems import OracleSystem


@pytest.fixture
def oracle():
    return OracleSystem(TINY_TEST, store_data=True)


class TestFunctional:
    def test_tiled_roundtrip(self, oracle, rng):
        data = rng.integers(0, 2**31, (32, 32)).astype(np.int32)
        oracle.ingest("m", (32, 32), 4, data=data, tile=(16, 16))
        result = oracle.read_tile("m", (16, 0), (16, 16), with_data=True,
                                  dtype=np.int32)
        assert np.array_equal(result.data, data[16:32, 0:16])

    def test_write_tile(self, oracle, rng):
        data = rng.integers(0, 2**31, (32, 32)).astype(np.int32)
        oracle.ingest("m", (32, 32), 4, data=data, tile=(16, 16))
        patch = rng.integers(0, 2**31, (16, 16)).astype(np.int32)
        oracle.write_tile("m", (0, 16), (16, 16), data=patch)
        result = oracle.read_tile("m", (0, 16), (16, 16), with_data=True,
                                  dtype=np.int32)
        assert np.array_equal(result.data, patch)


class TestShapeDiscipline:
    def test_misaligned_read_rejected(self, oracle):
        oracle.ingest("m", (32, 32), 4, tile=(16, 16))
        with pytest.raises(ValueError):
            oracle.read_tile("m", (8, 0), (16, 16))

    def test_unknown_shape_rejected(self, oracle):
        oracle.ingest("m", (32, 32), 4, tile=(16, 16))
        with pytest.raises(KeyError):
            oracle.read_tile("m", (0, 0), (8, 8))

    def test_tile_must_divide_dataset(self, oracle):
        with pytest.raises(ValueError):
            oracle.ingest("m", (32, 32), 4, tile=(10, 16))

    def test_shared_dataset_needs_two_copies(self, oracle):
        """§7.2: workloads sharing a dataset under different shapes force
        the oracle to store two copies."""
        oracle.ingest("m", (32, 32), 4, tile=(16, 16))
        before = oracle.stored_bytes()
        oracle.ingest("m", (32, 32), 4, tile=(8, 32))
        assert oracle.stored_bytes() == 2 * before
        # both shapes readable
        oracle.read_tile("m", (0, 0), (16, 16))
        oracle.read_tile("m", (8, 0), (8, 32))


class TestPerformanceCharacter:
    def test_oracle_tile_is_contiguous_and_fast(self, rng):
        from repro.systems import BaselineSystem
        oracle = OracleSystem(TINY_TEST, store_data=False)
        oracle.ingest("m", (64, 64), 4, tile=(16, 16))
        baseline = BaselineSystem(TINY_TEST, store_data=False)
        baseline.ingest("m", (64, 64), 4)
        oracle.reset_time()
        baseline.reset_time()
        o = oracle.read_tile("m", (16, 16), (16, 16))
        b = baseline.read_tile("m", (16, 16), (16, 16))
        assert o.effective_bandwidth > b.effective_bandwidth
        assert o.requests < b.requests
