"""2-D separable convolution (Table 1: image processing).

CUDA Separable Convolution over a large image in square sub-blocks
(4096² of 65536² in the paper; same 1/16 ratio here).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.accelerator.kernels import KernelModel
from repro.workloads.base import TileFetch, Workload, WorkloadDataset
from repro.workloads.datagen import random_matrix

__all__ = ["Conv2dWorkload"]

#: the classic separable 7-tap Gaussian-ish kernel
DEFAULT_TAPS = np.array([1.0, 6.0, 15.0, 20.0, 15.0, 6.0, 1.0]) / 64.0


class Conv2dWorkload(Workload):
    name = "Conv2D"
    category = "Image Processing"
    data_dim_label = "2D"
    kernel_dim_label = "2D"

    def __init__(self, n: int = 4096, tile_rows: int = 256,
                 tile_cols: int = 1024, max_tiles: int = 64) -> None:
        if n % tile_rows != 0 or n % tile_cols != 0:
            raise ValueError("tile dims must divide n")
        self.n = n
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self.max_tiles = max_tiles
        self.taps = DEFAULT_TAPS

    def datasets(self) -> List[WorkloadDataset]:
        return [WorkloadDataset("image", (self.n, self.n), 4)]

    def tile_plan(self) -> List[TileFetch]:
        plan: List[TileFetch] = []
        for i in range(self.n // self.tile_rows):
            for j in range(self.n // self.tile_cols):
                plan.append(TileFetch(
                    "image", (i * self.tile_rows, j * self.tile_cols),
                    (self.tile_rows, self.tile_cols)))
                if len(plan) >= self.max_tiles:
                    return plan
        return plan

    def kernel_time(self, kernels: KernelModel, fetch: TileFetch) -> float:
        # separable convolution = row pass + column pass
        return kernels.stencil(self.tile_rows, self.tile_cols,
                               element_size=4, iterations=2)

    # -- functional ------------------------------------------------------
    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {"image": random_matrix(self.n, self.n,
                                       seed=int(rng.integers(2**31)))}

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """Separable convolution with edge padding."""
        image = inputs["image"].astype(np.float64)
        radius = len(self.taps) // 2
        padded = np.pad(image, ((0, 0), (radius, radius)), mode="edge")
        rows = np.zeros_like(image)
        for offset, tap in enumerate(self.taps):
            rows += tap * padded[:, offset:offset + image.shape[1]]
        padded = np.pad(rows, ((radius, radius), (0, 0)), mode="edge")
        out = np.zeros_like(image)
        for offset, tap in enumerate(self.taps):
            out += tap * padded[offset:offset + image.shape[0], :]
        return out
