"""A pool of independently-simulated SSDs behind one host.

Each :class:`DeviceHandle` wraps a complete single-device storage
system — its own flash array, link lane and host completion lane — so
devices never share timelines and per-device translation stays
independent (SALSA elevates commodity devices with a host translation
layer; FMMU keeps per-device maps separate so they never serialize).
The pool adds what is genuinely shared at the host:

* one :class:`~repro.runtime.scheduler.QueueDepthWindow` per device —
  the host-side in-flight window that arbitrates *all* tenant streams'
  sub-operations against that device;
* whole-device failure state, observed lazily and monotonically from a
  :class:`~repro.faults.plan.FaultPlan`'s ``kill_device`` events (a
  dead device never comes back);
* per-device accounting for the observability stack (sub-ops, bytes,
  service seconds, degraded reads, rebuilds, migrations).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.scheduler import QueueDepthWindow

__all__ = ["DeviceHandle", "DevicePool", "DEFAULT_DEVICE_QUEUE_DEPTH"]

#: host-side in-flight window per device (all tenant streams combined);
#: matches the co-run default queue depth
DEFAULT_DEVICE_QUEUE_DEPTH = 8

_COUNTER_KEYS = ("subops", "bytes", "service_time", "degraded_reads",
                 "rebuilds", "migrations_in", "migrations_out")


class DeviceHandle:
    """One pool slot: a device system plus its host-side window."""

    __slots__ = ("device_id", "system", "window")

    def __init__(self, device_id: int, system,
                 queue_depth: Optional[int]) -> None:
        self.device_id = device_id
        self.system = system
        self.window = QueueDepthWindow(queue_depth)


class DevicePool:
    """N independently-simulated devices plus the shared host state."""

    def __init__(self, systems: Sequence,
                 queue_depth: Optional[int] = DEFAULT_DEVICE_QUEUE_DEPTH,
                 parallel: int = 0,
                 ) -> None:
        if not systems:
            raise ValueError("a device pool needs at least one device")
        self.queue_depth = queue_depth
        #: worker-process count for process-per-device execution; 0
        #: keeps everything in the host process. Workers fork lazily on
        #: the first routed op (see :mod:`repro.cluster.parallel`).
        self.parallel = int(parallel)
        self.workers = None
        self.devices: List[DeviceHandle] = [
            DeviceHandle(index, system, queue_depth)
            for index, system in enumerate(systems)]
        #: device -> earliest scheduled kill time (from kill_device plan
        #: events); applied lazily as ops observe model time
        self._kill_times: Dict[int, float] = {}
        self._clock = 0.0
        self.dead: set = set()
        self._counters: List[Dict[str, float]] = [
            {key: 0 for key in _COUNTER_KEYS} for _ in systems]

    @classmethod
    def from_factory(cls, count: int, factory: Callable[[int], object],
                     queue_depth: Optional[int] = DEFAULT_DEVICE_QUEUE_DEPTH,
                     parallel: int = 0,
                     ) -> "DevicePool":
        """Build ``count`` devices with ``factory(device_id)``."""
        if count < 1:
            raise ValueError("a device pool needs at least one device")
        return cls([factory(index) for index in range(count)],
                   queue_depth=queue_depth, parallel=parallel)

    def ensure_workers(self):
        """Fork the worker group on first use (``parallel > 0`` only).

        Deferred so every device system is fully constructed — and any
        observability or fault configuration attached — before the fork
        snapshots them."""
        if self.parallel <= 0:
            return None
        if self.workers is None:
            from repro.cluster.parallel import WorkerGroup
            self.workers = WorkerGroup(self.devices, self.parallel)
        return self.workers

    def close_workers(self) -> None:
        if self.workers is not None:
            self.workers.close()
            self.workers = None

    def __len__(self) -> int:
        return len(self.devices)

    def handle(self, device: int) -> DeviceHandle:
        if not 0 <= device < len(self.devices):
            raise ValueError(
                f"device {device} outside pool (0..{len(self.devices) - 1})")
        return self.devices[device]

    # ------------------------------------------------------------------
    # whole-device failures
    # ------------------------------------------------------------------
    def schedule_kill(self, device: int, at: float = 0.0) -> None:
        """Arm a whole-device kill at model time ``at`` (lazy, like the
        per-device fault injector's plan events)."""
        self.handle(device)
        current = self._kill_times.get(device)
        if current is None or at < current:
            self._kill_times[device] = at

    def kill_now(self, device: int) -> None:
        """Mark a device dead immediately (runtime control path; the
        scripted path is a :class:`~repro.faults.plan.FaultPlan`
        ``kill_device`` event)."""
        self.handle(device)
        self.dead.add(device)

    def observe(self, now: float) -> None:
        """Apply every scheduled kill due at or before ``now``. Time is
        observed monotonically: once a kill is seen it stays applied."""
        if now > self._clock:
            self._clock = now
        for device, at in list(self._kill_times.items()):
            if at <= self._clock:
                self.dead.add(device)
                del self._kill_times[device]

    def is_dead(self, device: int) -> bool:
        return device in self.dead

    @property
    def has_kill_plan(self) -> bool:
        """Any device already dead or scheduled to die."""
        return bool(self.dead or self._kill_times)

    def live_devices(self) -> Tuple[int, ...]:
        return tuple(handle.device_id for handle in self.devices
                     if handle.device_id not in self.dead)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def note(self, device: int, key: str, amount: float = 1) -> None:
        counters = self._counters[device]
        counters[key] = counters.get(key, 0) + amount

    def note_io(self, device: int, result) -> None:
        """Account one completed sub-operation on ``device``."""
        counters = self._counters[device]
        counters["subops"] += 1
        counters["bytes"] += result.fetched_bytes
        counters["service_time"] += max(
            result.end_time - result.start_time, 0.0)

    def device_report(self) -> Dict[str, Dict[str, object]]:
        """Per-device accounting snapshot, JSON-ready, ``d0``/``d1``...
        keys matching the trace/metrics label convention."""
        report: Dict[str, Dict[str, object]] = {}
        # once workers own the device state the parent's systems are
        # stale mirrors — fetch the STL-derived fields over RPC instead
        extras = self.workers.extras() if self.workers is not None else None
        for handle in self.devices:
            entry: Dict[str, object] = dict(self._counters[handle.device_id])
            entry["dead"] = handle.device_id in self.dead
            if extras is not None:
                entry.update(extras.get(handle.device_id, {}))
            else:
                stl = getattr(handle.system, "stl", None)
                if stl is not None:
                    gc = getattr(stl, "gc", None)
                    if gc is not None:
                        entry["gc_erased_blocks"] = gc.total_erased
                    allocator = getattr(stl, "allocator", None)
                    if allocator is not None:
                        entry["free_pages"] = allocator.total_free_pages()
            report[f"d{handle.device_id}"] = entry
        return report

    # ------------------------------------------------------------------
    def reset_time(self) -> None:
        """Zero every device's timelines and the host windows; death is
        structural and persists across measurement phases."""
        for handle in self.devices:
            handle.system.reset_time()
            handle.window.reset()
        if self.workers is not None:
            self.workers.reset_time()

    def fault_counters(self) -> Optional[Dict[str, int]]:
        """Summed per-device injector counters (None when no device has
        an injector attached)."""
        merged: Dict[str, int] = {}
        any_injector = False
        for handle in self.devices:
            counters = handle.system.fault_counters()
            if counters is None:
                continue
            any_injector = True
            for name, value in counters.items():
                merged[name] = merged.get(name, 0) + value
        return merged if any_injector else None
