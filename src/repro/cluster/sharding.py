"""Two-tier sharding: device subset × channel/bank subset.

The single-device :class:`~repro.core.sharding.ShardSpec` pins a space
to a channel/bank subset of *one* flash array. A device pool adds an
outer tier: :class:`PoolShardSpec` names the subset of pool devices a
dataset's extents may be placed on, and optionally carries an inner
:class:`ShardSpec` that every device-local sub-space is pinned to (the
same channel/bank subset on each of its devices — FlashBlox-style hard
isolation, now per device).

``PoolShardSpec.normalize`` accepts the legacy single-tier forms so
QoS configs written for one device keep working on a pool: a bare
``ShardSpec`` (or channel sequence) becomes the inner tier with every
device allowed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.sharding import ShardSpec

__all__ = ["PoolShardSpec"]


@dataclass(frozen=True)
class PoolShardSpec:
    """A (device subset, within-device shard) pair.

    ``devices`` lists the pool device ids the dataset may occupy
    (None = every device); ``shard`` pins each device-local sub-space
    to a channel/bank subset (None = whole array per device).
    """

    devices: Optional[Tuple[int, ...]] = None
    shard: Optional[ShardSpec] = None

    def __post_init__(self) -> None:
        if self.devices is not None:
            devices = tuple(int(d) for d in self.devices)
            seen = set()
            duplicates = []
            for device in devices:
                if device in seen and device not in duplicates:
                    duplicates.append(device)
                seen.add(device)
            if duplicates:
                raise ValueError(
                    f"pool shard devices contain duplicate entries "
                    f"{tuple(duplicates)}: {devices}")
            if not devices:
                raise ValueError("devices=() would leave the pool shard "
                                 "empty; use devices=None for every device")
            if any(device < 0 for device in devices):
                raise ValueError("pool device ids start at 0")
            object.__setattr__(self, "devices", tuple(sorted(devices)))

    # ------------------------------------------------------------------
    def device_subset(self, pool_size: int) -> Tuple[int, ...]:
        """The allowed device ids, validated against the pool size."""
        if self.devices is None:
            return tuple(range(pool_size))
        for device in self.devices:
            if device >= pool_size:
                raise ValueError(
                    f"pool shard device {device} outside pool "
                    f"(0..{pool_size - 1})")
        return self.devices

    @classmethod
    def normalize(cls, shard) -> Optional["PoolShardSpec"]:
        """Accept a PoolShardSpec, a single-device ShardSpec, a bare
        channel sequence, or None."""
        if shard is None or isinstance(shard, cls):
            return shard
        return cls(devices=None, shard=ShardSpec.normalize(shard))
