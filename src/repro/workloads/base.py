"""Workload abstraction for the Table 1 applications.

A workload declares:

* its **datasets** (dims + element size, Table 1 "Data" columns);
* a **tile plan** — the ordered sequence of sub-dimensional fetches its
  pipelined implementation performs (Table 1 "Kernel sub-dimension");
* a **kernel-time model** per tile (on the GPU model);
* optional **functional** pieces: a dataset generator and a NumPy
  reference kernel, used by the examples and the correctness tests
  (the paper keeps compute kernels identical across storage systems,
  §6 — so we verify that every system feeds the same bytes to the same
  kernel).

All sizes default to a documented down-scale of the paper's (see
DESIGN.md §5); constructors accept explicit sizes so tests can shrink
further and ablations can grow.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.accelerator.kernels import KernelModel

__all__ = ["WorkloadDataset", "TileFetch", "Workload", "SCALE_NOTE"]

SCALE_NOTE = (
    "Paper-scale datasets (65536^2 and 2048^3 elements) are infeasible to "
    "simulate page-by-page in Python; workloads default to a 1/16-per-axis "
    "scale with tile shapes scaled identically, preserving the tile:dataset "
    "ratio and therefore the access-pattern structure."
)


@dataclass(frozen=True)
class WorkloadDataset:
    """One input dataset of a workload."""

    name: str
    dims: Tuple[int, ...]
    element_size: int

    @property
    def total_bytes(self) -> int:
        total = self.element_size
        for extent in self.dims:
            total *= extent
        return total


@dataclass(frozen=True)
class TileFetch:
    """One pipelined fetch: a tile of ``extents`` at ``origin``."""

    dataset: str
    origin: Tuple[int, ...]
    extents: Tuple[int, ...]

    @property
    def shape_key(self) -> Tuple[str, Tuple[int, ...]]:
        return (self.dataset, self.extents)


class Workload(abc.ABC):
    """One Table 1 application."""

    #: short name as used in the paper's figures
    name: str = "abstract"
    #: Table 1 category
    category: str = ""
    #: Table 1 data / kernel dimensionality labels
    data_dim_label: str = ""
    kernel_dim_label: str = ""
    #: whether the kernel rides the Tensor-Core curve
    uses_tensor_cores: bool = False

    @abc.abstractmethod
    def datasets(self) -> List[WorkloadDataset]:
        """Datasets to ingest before the run."""

    @abc.abstractmethod
    def tile_plan(self) -> List[TileFetch]:
        """Ordered pipelined fetches (§6.2: I/O overlaps compute)."""

    @abc.abstractmethod
    def kernel_time(self, kernels: KernelModel, fetch: TileFetch) -> float:
        """Compute-kernel time for one fetched tile."""

    # -- functional layer (small-scale verification & examples) --------
    def generate(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Synthetic input data (paper §A.3.4 generators)."""
        raise NotImplementedError(f"{self.name} has no functional generator")

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """NumPy reference kernel over the full (small-scale) inputs."""
        raise NotImplementedError(f"{self.name} has no reference kernel")

    # ------------------------------------------------------------------
    def dataset(self, name: str) -> WorkloadDataset:
        for ds in self.datasets():
            if ds.name == name:
                return ds
        raise KeyError(f"{self.name} has no dataset {name!r}")

    def tile_bytes(self, fetch: TileFetch) -> int:
        elem = self.dataset(fetch.dataset).element_size
        total = elem
        for extent in fetch.extents:
            total *= extent
        return total

    def shared_input_group(self) -> Optional[str]:
        """Workloads sharing one dataset (BFS/SSSP, KMeans/KNN, TTV/TC)
        return a common group label (paper §6.2)."""
        return None
