"""Physical geometry of a flash / NVM device.

The paper's prototype SSD (§6.1) has 32 parallel channels, 8 banks per
channel and 4 KB pages. The geometry object is pure data: every other
component (FTL, STL, allocator, timing model) derives its structure from
it, which is what lets NDS "gauge the underlying memory-device
architecture" (paper §1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Geometry"]


@dataclass(frozen=True)
class Geometry:
    """Channel/bank/block/page organization of an NVM device.

    Attributes
    ----------
    channels:
        Number of parallel channels; all channels can serve unique
        requests simultaneously (paper §2.1).
    banks_per_channel:
        Banks (dies) per channel; a free bank can accept a request while
        sibling banks are busy.
    blocks_per_bank:
        Erase blocks per bank.
    pages_per_block:
        Pages per erase block (the erase granularity is the block).
    page_size:
        Basic access granularity in bytes (paper: 4 KB).
    """

    channels: int = 32
    banks_per_channel: int = 8
    blocks_per_bank: int = 256
    pages_per_block: int = 64
    page_size: int = 4096

    def __post_init__(self) -> None:
        for name in ("channels", "banks_per_channel", "blocks_per_bank",
                     "pages_per_block", "page_size"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def banks(self) -> int:
        """Total banks across all channels."""
        return self.channels * self.banks_per_channel

    @property
    def pages_per_bank(self) -> int:
        return self.blocks_per_bank * self.pages_per_block

    @property
    def pages_per_channel(self) -> int:
        return self.banks_per_channel * self.pages_per_bank

    @property
    def total_pages(self) -> int:
        return self.channels * self.pages_per_channel

    @property
    def total_blocks(self) -> int:
        return self.banks * self.blocks_per_bank

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_size

    @property
    def max_parallel_requests(self) -> int:
        """``Max_{Number of Parallel Requests}`` in Eq. 1 of the paper:
        the number of basic-access units the device can move at once,
        i.e. the channel count."""
        return self.channels

    def scaled(self, block_factor: float = 1.0, channel_factor: float = 1.0) -> "Geometry":
        """A geometry with scaled capacity (used by down-scaled experiments).

        Channel/bank structure is what NDS exploits, so scaling shrinks
        ``blocks_per_bank`` (capacity) rather than parallelism, unless a
        ``channel_factor`` is given explicitly.
        """
        return Geometry(
            channels=max(1, int(self.channels * channel_factor)),
            banks_per_channel=self.banks_per_channel,
            blocks_per_bank=max(1, int(self.blocks_per_bank * block_factor)),
            pages_per_block=self.pages_per_block,
            page_size=self.page_size,
        )
