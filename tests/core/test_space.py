"""Tests for NDS spaces."""

import pytest

from repro.core import InvalidCoordinateError, Space
from repro.nvm import Geometry


@pytest.fixture
def geometry():
    return Geometry(channels=4, banks_per_channel=2, page_size=256)


@pytest.fixture
def space(geometry):
    # bb_size_min = 1 KiB; 4-byte elements -> 16 per dimension
    return Space.create(1, (64, 48), 4, geometry)


class TestCreation:
    def test_derived_block_layout(self, space):
        assert space.bb == (16, 16)
        assert space.grid == (4, 3)
        assert space.total_blocks == 12
        assert space.pages_per_block == 4

    def test_volume_and_bytes(self, space):
        assert space.volume == 64 * 48
        assert space.total_bytes == 64 * 48 * 4
        assert space.block_bytes == 16 * 16 * 4

    def test_grid_rounds_up(self, geometry):
        space = Space.create(2, (65, 17), 4, geometry)
        assert space.grid == (5, 2)

    def test_too_many_dimensions_rejected(self, geometry):
        with pytest.raises(ValueError):
            Space.create(1, (2,) * 33, 4, geometry)

    def test_element_size_validated(self, geometry):
        with pytest.raises(ValueError):
            Space.create(1, (16, 16), 0, geometry)

    def test_bb_override(self, geometry):
        space = Space.create(1, (64, 64), 4, geometry, bb_override=(8, 8))
        assert space.bb == (8, 8)
        assert space.grid == (8, 8)


class TestRequestValidation:
    def test_valid_partition(self, space):
        space.validate_request((1, 2), (16, 16))

    def test_origin(self, space):
        assert space.request_origin((1, 2), (16, 16)) == (16, 32)

    def test_rank_mismatch(self, space):
        with pytest.raises(InvalidCoordinateError):
            space.validate_request((1,), (16, 16))

    def test_partition_exceeding_extent(self, space):
        with pytest.raises(InvalidCoordinateError):
            space.validate_request((4, 0), (16, 16))  # 4*16 = 64 = dim

    def test_partition_not_dividing_extent(self, space):
        # coordinate 2 with sub-dim 20 would end at 60 <= 64: valid
        space.validate_request((2, 0), (20, 16))
        # but coordinate 3 would span [60, 80) > 64
        with pytest.raises(InvalidCoordinateError):
            space.validate_request((3, 0), (20, 16))

    def test_zero_sub_dimension(self, space):
        with pytest.raises(InvalidCoordinateError):
            space.validate_request((0, 0), (0, 16))

    def test_negative_coordinate(self, space):
        with pytest.raises(InvalidCoordinateError):
            space.validate_request((-1, 0), (16, 16))
