"""Greedy garbage collection for the page-mapped FTL.

The paper's prototype reserves 10 % of capacity as over-provisioning for
background GC (§6.1) and triggers collection when the free units of a
(channel, bank) combination drop below a threshold, "typically 10 %"
(§4.2). Victim selection is greedy (fewest live pages); valid pages are
relocated within the same (channel, bank) so the striping (FTL) or
building-block placement (STL) invariants survive collection.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.faults.errors import EraseFailError, ProgramFailError
from repro.ftl.mapping import OutOfSpaceError, PageMapFTL
from repro.nvm.address import PhysicalPageAddress, ppa_to_index
from repro.nvm.flash import FlashArray
from repro.sim.stats import StatSet

__all__ = ["GarbageCollector", "GcResult"]


@dataclass
class GcResult:
    """What one GC invocation did and how long it took."""

    ran: bool
    end_time: float
    pages_relocated: int = 0
    blocks_erased: int = 0
    stats: StatSet = field(default_factory=StatSet)


class GarbageCollector:
    """Greedy per-(channel, bank) garbage collector.

    Keeps the reverse PPA→LPN table needed to patch the forward map when
    live pages move. (For NDS the analogous reverse lookup maps physical
    units back to building blocks, §4.2; see :mod:`repro.core.gc`.)
    """

    def __init__(self, ftl: PageMapFTL, flash: FlashArray,
                 threshold: float = 0.10, policy: str = "greedy") -> None:
        if not (0.0 < threshold < 1.0):
            raise ValueError("GC threshold must be in (0, 1)")
        if policy not in ("greedy", "fifo", "cost-benefit"):
            raise ValueError(f"unknown GC policy {policy!r}")
        self.ftl = ftl
        self.flash = flash
        self.threshold = threshold
        self.policy = policy
        self.reverse: Dict[int, int] = {}
        self.total_relocated = 0
        self.total_erased = 0
        self.total_retired = 0
        #: optional metrics registry (set via the owning system's
        #: ``set_metrics``)
        self.metrics = None
        #: optional trace recorder (set via ``set_trace``); collections
        #: are marked as instants, never duration spans — a GC child
        #: span would steal critical-path attribution from the flash
        #: work it triggered
        self.trace = None

    def _recovery(self):
        """Context for internal relocation traffic: probabilistic fault
        draws are suppressed (the controller verifies its own moves)."""
        faults = self.flash.faults
        return faults.suppress() if faults is not None else nullcontext()

    # ------------------------------------------------------------------
    # reverse-map maintenance (called by the SSD on every map change)
    # ------------------------------------------------------------------
    def note_alloc(self, lpn: int, ppa: PhysicalPageAddress,
                   old: Optional[PhysicalPageAddress]) -> None:
        if old is not None:
            self.reverse.pop(ppa_to_index(old, self.ftl.geometry), None)
        self.reverse[ppa_to_index(ppa, self.ftl.geometry)] = lpn

    def note_trim(self, ppa: Optional[PhysicalPageAddress]) -> None:
        if ppa is not None:
            self.reverse.pop(ppa_to_index(ppa, self.ftl.geometry), None)

    # ------------------------------------------------------------------
    def needs_collection(self, channel: int, bank: int) -> bool:
        return self.ftl.free_fraction(channel, bank) < self.threshold

    def collect(self, channel: int, bank: int, now: float) -> GcResult:
        """Collect victims in one (channel, bank) until above threshold.

        Returns timing (reads + programs + erase are charged to the
        flash timelines) and relocation counts.
        """
        with self._recovery():
            result = self._collect(channel, bank, now)
        if self.metrics is not None and result.ran:
            self.metrics.observe("ftl.gc", result.end_time - now)
            self.metrics.count("ftl.gc.collections")
            self.metrics.count("ftl.gc.pages_relocated",
                               result.pages_relocated)
            self.metrics.count("ftl.gc.blocks_erased", result.blocks_erased)
        if self.trace is not None and result.ran:
            self.trace.instant(
                "gc", result.end_time, name="gc", start=now,
                duration=result.end_time - now, channel=channel, bank=bank,
                pages_relocated=result.pages_relocated,
                blocks_erased=result.blocks_erased)
        return result

    def _collect(self, channel: int, bank: int, now: float) -> GcResult:
        result = GcResult(ran=False, end_time=now)
        plane = self.ftl.planes[(channel, bank)]
        geometry = self.ftl.geometry
        while self.needs_collection(channel, bank):
            victims = plane.victim_candidates(self.policy)
            if not victims:
                break
            victim = victims[0]
            state = plane.blocks[victim]
            moved_any = False
            for page in range(geometry.pages_per_block):
                if not state.valid[page]:
                    continue
                old_ppa = PhysicalPageAddress(channel, bank, victim, page)
                lpn = self.reverse.get(ppa_to_index(old_ppa, geometry))
                read = self.flash.read_pages([old_ppa], result.end_time if moved_any else now)
                payload = None
                if self.flash.store_data:
                    payload = [self.flash.page_data(old_ppa)]
                plane.invalidate(old_ppa)
                try:
                    new_ppa = plane.allocate_page()
                except OutOfSpaceError:
                    # Nothing free in this plane at all: give back and stop.
                    state.valid[page] = True
                    result.end_time = max(result.end_time, read.end_time)
                    return result
                issue = read.end_time
                while True:
                    try:
                        program = self.flash.program_pages([new_ppa], issue,
                                                           data=payload)
                        break
                    except ProgramFailError as err:
                        # structural bad block under the append point:
                        # retire it (its other live pages move too) and
                        # retry at the next free page
                        plane.invalidate(new_ppa)
                        issue = self.retire_block(channel, bank,
                                                  new_ppa.block,
                                                  err.fail_time)
                        try:
                            new_ppa = plane.allocate_page()
                        except OutOfSpaceError:
                            state.valid[page] = True
                            result.end_time = max(result.end_time, issue)
                            return result
                if lpn is not None:
                    self.ftl.map[lpn] = new_ppa
                    self.reverse.pop(ppa_to_index(old_ppa, geometry), None)
                    self.reverse[ppa_to_index(new_ppa, geometry)] = lpn
                result.end_time = max(result.end_time, program.end_time)
                result.pages_relocated += 1
                moved_any = True
            try:
                erase = self.flash.erase_block(channel, bank, victim,
                                               result.end_time)
            except EraseFailError as err:
                # live pages are already out; the block is grown bad
                self._retire(plane, victim)
                result.end_time = max(result.end_time, err.fail_time)
                result.ran = True
                continue
            plane.release_block(victim)
            result.end_time = max(result.end_time, erase.end_time)
            result.blocks_erased += 1
            result.ran = True
        self.total_relocated += result.pages_relocated
        self.total_erased += result.blocks_erased
        result.stats.count("gc_pages_relocated", result.pages_relocated)
        result.stats.count("gc_blocks_erased", result.blocks_erased)
        return result

    # ------------------------------------------------------------------
    # grown-bad-block management
    # ------------------------------------------------------------------
    def _retire(self, plane, block: int) -> None:
        plane.retire_block(block)
        self.total_retired += 1
        if self.flash.faults is not None:
            self.flash.faults.stats.count("grown_bad_blocks")

    def retire_block(self, channel: int, bank: int, block: int,
                     now: float) -> float:
        """Grown-bad-block handling: relocate the block's live pages
        within the plane, then take the block out of service for good.

        Returns the model time when relocation traffic finished. Raises
        :class:`~repro.ftl.mapping.OutOfSpaceError` when the plane
        cannot absorb the survivors even after collection.
        """
        plane = self.ftl.planes[(channel, bank)]
        geometry = self.ftl.geometry
        state = plane._state(block)
        # survivors must not land back in the block being retired
        if plane.active_block == block:
            plane.active_block = None
        if block in plane.free_blocks:
            plane.free_blocks.remove(block)
        end = now
        with self._recovery():
            for page in range(geometry.pages_per_block):
                if not state.valid[page]:
                    continue
                old_ppa = PhysicalPageAddress(channel, bank, block, page)
                lpn = self.reverse.get(ppa_to_index(old_ppa, geometry))
                read = self.flash.read_pages([old_ppa], end)
                payload = None
                if self.flash.store_data:
                    payload = [self.flash.page_data(old_ppa)]
                state.valid[page] = False
                try:
                    new_ppa = plane.allocate_page()
                except OutOfSpaceError:
                    self._collect(channel, bank, read.end_time)
                    new_ppa = plane.allocate_page()
                program = self.flash.program_pages([new_ppa], read.end_time,
                                                   data=payload)
                if lpn is not None:
                    self.ftl.map[lpn] = new_ppa
                    self.reverse.pop(ppa_to_index(old_ppa, geometry), None)
                    self.reverse[ppa_to_index(new_ppa, geometry)] = lpn
                self.total_relocated += 1
                end = max(end, program.end_time)
            self._retire(plane, block)
        return end
