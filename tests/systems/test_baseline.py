"""Tests for the baseline architecture (Fig. 7(a))."""

import numpy as np
import pytest

from repro.nvm import TINY_TEST
from repro.systems import BaselineSystem
from repro.systems.base import row_runs


@pytest.fixture
def system():
    return BaselineSystem(TINY_TEST, store_data=True)


class TestRowRuns:
    def test_partial_width_one_run_per_row(self):
        runs = row_runs((8, 8), (2, 2), (3, 4))
        assert runs == ((2 * 8 + 2, 4), (3 * 8 + 2, 4), (4 * 8 + 2, 4))

    def test_full_width_coalesces(self):
        runs = row_runs((8, 8), (2, 0), (3, 8))
        assert runs == ((16, 24),)

    def test_3d_inner_axis_full(self):
        runs = row_runs((4, 4, 4), (1, 1, 0), (2, 2, 4))
        assert runs == ((1 * 16 + 1 * 4, 8), (2 * 16 + 1 * 4, 8))

    def test_3d_inner_axis_partial(self):
        runs = row_runs((4, 4, 4), (0, 0, 1), (2, 2, 2))
        assert len(runs) == 4
        assert all(length == 2 for _start, length in runs)

    def test_1d(self):
        assert row_runs((100,), (10,), (25,)) == ((10, 25),)

    def test_whole_array_single_run(self):
        assert row_runs((4, 4), (0, 0), (4, 4)) == ((0, 16),)


class TestFunctional:
    def test_ingest_and_read_tile(self, system, rng):
        data = rng.integers(0, 2**31, (64, 64)).astype(np.int32)
        system.ingest("m", (64, 64), 4, data=data)
        result = system.read_tile("m", (5, 9), (16, 20), with_data=True,
                                  dtype=np.int32)
        assert np.array_equal(result.data, data[5:21, 9:29])

    def test_column_store_layout(self, rng):
        system = BaselineSystem(TINY_TEST, store_data=True)
        data = rng.integers(0, 2**31, (32, 32)).astype(np.int32)
        system.ingest("m", (32, 32), 4, data=data, layout="col")
        result = system.read_tile("m", (3, 4), (8, 8), with_data=True,
                                  dtype=np.int32)
        assert np.array_equal(result.data, data[3:11, 4:12])

    def test_1d_dataset(self, system, rng):
        data = rng.integers(0, 2**31, 4096).astype(np.int32)
        system.ingest("v", (4096,), 4, data=data)
        result = system.read_tile("v", (100,), (512,), with_data=True,
                                  dtype=np.int32)
        assert np.array_equal(result.data, data[100:612])

    def test_duplicate_ingest_rejected(self, system):
        system.ingest("m", (16, 16), 4)
        with pytest.raises(ValueError):
            system.ingest("m", (16, 16), 4)

    def test_unknown_dataset(self, system):
        with pytest.raises(KeyError):
            system.read_tile("nope", (0,), (1,))

    def test_capacity_checked(self, system):
        with pytest.raises(ValueError):
            system.ingest("huge", (10**6, 10**6), 8)


class TestAccessCosts:
    def test_marshalled_tile_needs_one_request_per_run(self, system):
        system.ingest("m", (64, 64), 4)
        system.reset_time()
        result = system.read_tile("m", (0, 0), (16, 16))
        assert result.requests == 16  # one per row

    def test_contiguous_read_coalesces(self, system):
        system.ingest("m", (64, 64), 4)
        system.reset_time()
        result = system.read_tile("m", (0, 0), (16, 64))
        assert result.requests < 16

    def test_fetched_at_least_useful(self, system):
        system.ingest("m", (64, 64), 4)
        system.reset_time()
        result = system.read_tile("m", (1, 1), (7, 9))
        assert result.fetched_bytes >= result.useful_bytes

    def test_column_fetch_slower_than_row_fetch(self, system):
        """[P3]: column-crossing fetches underutilize the device."""
        system.ingest("m", (64, 64), 4)
        system.reset_time()
        row = system.read_tile("m", (0, 0), (8, 64))
        system.reset_time()
        col = system.read_tile("m", (0, 0), (64, 8))
        assert col.effective_bandwidth < row.effective_bandwidth

    def test_write_tile_page_aligned(self, system, rng):
        data = rng.integers(0, 2**31, (64, 64)).astype(np.int32)
        system.ingest("m", (64, 64), 4, data=data)
        # a full-width stripe is page aligned on the tiny device
        patch = rng.integers(0, 2**31, (16, 64)).astype(np.int32)
        system.write_tile("m", (16, 0), (16, 64), data=patch)
        result = system.read_tile("m", (16, 0), (16, 64), with_data=True,
                                  dtype=np.int32)
        assert np.array_equal(result.data, patch)

    def test_functional_unaligned_write_rejected(self, system, rng):
        system.ingest("m", (64, 64), 4)
        with pytest.raises(NotImplementedError):
            system.write_tile("m", (0, 0), (3, 7),
                              data=rng.integers(0, 9, (3, 7)).astype(np.int32))
