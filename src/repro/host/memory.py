"""Host DRAM copy model.

Marshalling cost ([P1]) is dominated by *small* copies: each copy pays a
fixed overhead (loop/pointer math, cache effects, the "CPU instructions
to calculate the mapping between raw-data offset and target memory
locations" of §2.1) on top of the byte movement. The paper's software
NDS loses ~0.5 GB/s to exactly this effect — 2 KB copies, 256 per
building block (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryModel"]


@dataclass(frozen=True)
class MemoryModel:
    """Copy-cost parameters for host main memory.

    Attributes
    ----------
    copy_bandwidth:
        Streaming copy bandwidth in bytes/second (read+write combined
        effective rate of one core).
    per_copy_overhead:
        Fixed seconds per discrete ``memcpy`` invocation.
    """

    #: calibrated so chunked assembly hits the paper's §7.1 anchor:
    #: 2 KB chunks -> 3.8 GB/s (the software NDS row-fetch bound);
    #: 1 KB -> 3.67, 256 B -> 3.0, large copies -> 3.95 GB/s (read+write
    #: traffic of one marshalling core)
    copy_bandwidth: float = 4.2e9
    per_copy_overhead: float = 20e-9

    def __post_init__(self) -> None:
        if self.copy_bandwidth <= 0:
            raise ValueError("copy_bandwidth must be positive")
        if self.per_copy_overhead < 0:
            raise ValueError("per_copy_overhead must be non-negative")

    def copy_time(self, num_bytes: int, chunk_bytes: int = 0) -> float:
        """Time to move ``num_bytes``, in ``chunk_bytes`` pieces.

        ``chunk_bytes == 0`` means one contiguous copy.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        if chunk_bytes <= 0 or chunk_bytes >= num_bytes:
            chunks = 1
        else:
            chunks = -(-num_bytes // chunk_bytes)
        return chunks * self.per_copy_overhead + num_bytes / self.copy_bandwidth

    def effective_bandwidth(self, chunk_bytes: int) -> float:
        """Achieved copy bandwidth when moving data in one chunk size."""
        if chunk_bytes <= 0:
            return 0.0
        return chunk_bytes / self.copy_time(chunk_bytes)
