"""Configuration knob of the host DRAM cache tier.

``CacheConfig`` follows the discipline of ``FaultConfig`` and the
metrics registry: the knob is *absent by default* and every timed float
of the model is bit-identical until a system is constructed with one.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheConfig", "CACHE_POLICIES"]

#: eviction policies the tier knows how to build
CACHE_POLICIES = ("lru", "clock", "admission")


@dataclass(frozen=True)
class CacheConfig:
    """Host DRAM caching/tiering parameters.

    Attributes
    ----------
    capacity_bytes:
        DRAM budget for cached regions (payload bytes, not counting
        bookkeeping). Insertions evict until the budget holds.
    policy:
        ``"lru"`` (recency list), ``"clock"`` (second-chance ref bits,
        the classic low-overhead LRU approximation) or ``"admission"``
        (TinyLFU-style doorkeeper: a region must be touched twice within
        the recent-miss window before it may displace cached data —
        scan-resistant for zipfian embedding traffic).
    write_back:
        False (default) = write-through: writes run the full device path
        and refresh the cached copy. True = write-back: writes are
        absorbed into DRAM, marked dirty, and reach flash on eviction,
        when the dirty set exceeds ``dirty_max``, or at an explicit
        ``flush_cache()`` fence (the durability contract).
    dirty_max:
        Bound on buffered dirty regions under write-back; the oldest
        dirty region is flushed once the bound is crossed.
    prefetch:
        N-D neighbor prefetch depth. On a demand miss the NDS systems
        fetch up to ``prefetch`` forward neighbor regions along each
        accessed axis (origin advanced by the region extent), so tile
        sweeps and sequential embedding-row scans hit DRAM. 0 disables.
        The linear systems (baseline/oracle) ignore it — they have no
        N-D geometry to drive it.
    admission_window:
        Size of the admission policy's doorkeeper window (recently seen
        once-missed keys). Ignored by the other policies.
    """

    capacity_bytes: int = 8 << 20
    policy: str = "lru"
    write_back: bool = False
    dirty_max: int = 64
    prefetch: int = 0
    admission_window: int = 1024

    def __post_init__(self) -> None:
        if self.capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")
        if self.policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {self.policy!r}; "
                f"choose from {CACHE_POLICIES}")
        if self.dirty_max < 1:
            raise ValueError("dirty_max must be >= 1")
        if self.prefetch < 0:
            raise ValueError("prefetch must be >= 0")
        if self.admission_window < 1:
            raise ValueError("admission_window must be >= 1")
