"""Tests for the Eq. 5 space translator."""

import pytest

from repro.core import Space, pages_for_region, translate, translate_region
from repro.nvm import Geometry


@pytest.fixture
def geometry():
    return Geometry(channels=4, banks_per_channel=2, page_size=256)


@pytest.fixture
def space(geometry):
    # bb = (16, 16), grid = (4, 4)
    return Space.create(1, (64, 64), 4, geometry)


class TestTranslate:
    def test_aligned_single_block(self, space):
        accesses = translate(space, (0, 0), (16, 16))
        assert len(accesses) == 1
        assert accesses[0].block_coord == (0, 0)
        assert accesses[0].is_full_block

    def test_aligned_multi_block(self, space):
        accesses = translate(space, (0, 0), (32, 32))
        assert {a.block_coord for a in accesses} == {
            (0, 0), (0, 1), (1, 0), (1, 1)}
        assert all(a.is_full_block for a in accesses)

    def test_figure5_block_count(self, geometry):
        """Fig. 5: an 8192×8192 request over 128×128 blocks touches
        4096 = 64×64 building blocks."""
        big = Space.create(2, (16384, 16384), 4,
                           Geometry(channels=8, banks_per_channel=8,
                                    page_size=4096))
        assert big.bb == (128, 128)
        accesses = translate(big, (1, 0), (8192, 8192))
        assert len(accesses) == 64 * 64

    def test_unaligned_region_slices(self, space):
        accesses = translate_region(space, (8, 8), (16, 16))
        assert len(accesses) == 4
        by_coord = {a.block_coord: a for a in accesses}
        assert by_coord[(0, 0)].block_slice == ((8, 16), (8, 16))
        assert by_coord[(0, 0)].out_slice == ((0, 8), (0, 8))
        assert by_coord[(1, 1)].block_slice == ((0, 8), (0, 8))
        assert by_coord[(1, 1)].out_slice == ((8, 16), (8, 16))

    def test_out_slices_tile_the_request(self, space):
        accesses = translate_region(space, (3, 5), (30, 40))
        covered = 0
        for access in accesses:
            covered += access.element_count()
        assert covered == 30 * 40

    def test_blocks_emitted_in_row_major_grid_order(self, space):
        accesses = translate(space, (0, 0), (64, 64))
        coords = [a.block_coord for a in accesses]
        assert coords == sorted(coords)

    def test_region_bounds_checked(self, space):
        with pytest.raises(ValueError):
            translate_region(space, (60, 0), (16, 16))
        with pytest.raises(ValueError):
            translate_region(space, (0, 0), (0, 16))
        with pytest.raises(ValueError):
            translate_region(space, (0,), (16,))


class TestPagesForRegion:
    def test_full_block_touches_all_pages(self, space):
        pages = pages_for_region(space, ((0, 16), (0, 16)))
        assert pages == list(range(space.pages_per_block))

    def test_first_rows_touch_prefix_pages(self, space):
        # page holds 256 B = 64 elements = 4 block rows of 16 elements
        pages = pages_for_region(space, ((0, 4), (0, 16)))
        assert pages == [0]
        pages = pages_for_region(space, ((0, 8), (0, 16)))
        assert pages == [0, 1]

    def test_column_slice_touches_every_page(self, space):
        pages = pages_for_region(space, ((0, 16), (0, 4)))
        assert pages == list(range(space.pages_per_block))

    def test_single_element(self, space):
        assert pages_for_region(space, ((15, 16), (15, 16))) == [3]

    def test_1d_space_pages(self, geometry):
        space1d = Space.create(3, (4096,), 4, geometry)
        # bb = 256 elements = 1 KiB = 4 pages of 256 B
        assert space1d.bb == (256,)
        assert pages_for_region(space1d, ((0, 64),)) == [0]
        assert pages_for_region(space1d, ((60, 130),)) == [0, 1, 2]
