"""Queue-depth-limited I/O request scheduling.

This engine reproduces the end-to-end request flow of paper Figure 7(a)
for the baseline system (and the LightNVM flow of Figure 7(b)):

  host software stack → link command → device controller → flash →
  link data transfer → (optional) host placement copy.

A queue depth > 1 lets consecutive requests overlap, so the steady
state is limited by the slowest resource — exactly how a real NVMe
queue pair behaves. All resources are FCFS timelines, so the analytic
schedule equals the event-driven one. The in-flight limit itself is
the runtime's :class:`~repro.runtime.scheduler.QueueDepthWindow` — the
same primitive that gates tenant streams in the request scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.ftl.ssd import BaselineSSD
from repro.host.cpu import HostCpu
from repro.interconnect.link import Link
from repro.runtime.scheduler import QueueDepthWindow
from repro.sim.resources import Timeline
from repro.sim.stats import StatSet

__all__ = ["IoRequest", "IoRunResult", "HostIoEngine"]


@dataclass
class IoRequest:
    """One host-visible I/O request.

    Attributes
    ----------
    lpns:
        Logical pages the device touches for this request.
    useful_bytes:
        Bytes the application actually wanted (may be less than the
        pages fetched — that difference is wasted device bandwidth).
    placement_chunk:
        If not None, the host CPU copies the useful bytes from the DMA
        buffer into their final location in chunks of this many bytes
        (0 = one contiguous copy). None models direct DMA placement.
    payload:
        Optional functional data for writes (one array per LPN).
    """

    lpns: Sequence[int]
    useful_bytes: int
    placement_chunk: Optional[int] = None
    payload: Optional[Sequence[np.ndarray]] = None


@dataclass
class IoRunResult:
    """Aggregate outcome of a batch of requests."""

    start_time: float
    end_time: float
    completions: List[float] = field(default_factory=list)
    useful_bytes: int = 0
    fetched_bytes: int = 0
    stats: StatSet = field(default_factory=StatSet)
    data: List[Optional[List[np.ndarray]]] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time

    @property
    def effective_bandwidth(self) -> float:
        """Application-visible bytes/second."""
        if self.elapsed <= 0:
            return 0.0
        return self.useful_bytes / self.elapsed


class HostIoEngine:
    """Drives a :class:`BaselineSSD` through a link with host CPU costs."""

    def __init__(self, ssd: BaselineSSD, link: Link, cpu: HostCpu,
                 queue_depth: int = 32) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.ssd = ssd
        self.link = link
        self.cpu = cpu
        self.queue_depth = queue_depth
        self.controller_line = Timeline("device_ctrl")
        self.controller_command_time = ssd.profile.controller_command_time
        #: optional per-layer span recorder (set via the owning
        #: system's ``set_trace``)
        self.trace = None
        #: optional metrics registry (set via ``set_metrics``)
        self.metrics = None
        #: when True (default) timing-only read batches with no trace /
        #: metrics / faults attached take an inlined per-request flow
        #: that performs the identical float operations in the identical
        #: order — bit-identical timings and stats, far less interpreter
        #: work. Set False to force the instrumentable path (A/B tests).
        self.fast_path = True

    def _can_fast_path(self, with_data: bool) -> bool:
        return (self.fast_path and not with_data and self.trace is None
                and self.metrics is None and self.cpu.trace is None
                and self.cpu.metrics is None and self.link.trace is None
                and self.link.metrics is None
                and self.ssd.flash.faults is None
                and self.ssd.flash.fast_path
                and self.controller_line.observer is None
                and self.cpu.issue_line.observer is None
                and self.link.line.observer is None)

    def _reserve_controller(self, earliest: float) -> float:
        start, end = self.controller_line.reserve(
            earliest, self.controller_command_time)
        if self.trace is not None:
            self.trace.span("device_ctrl", start, end, name="ftl_map")
        if self.metrics is not None:
            self.metrics.observe("ftl.map", end - start)
        return end

    # ------------------------------------------------------------------
    def run_reads(self, requests: Sequence[IoRequest], start_time: float = 0.0,
                  with_data: bool = False) -> IoRunResult:
        """Execute read requests in order under the queue-depth limit."""
        if self._can_fast_path(with_data):
            return self._run_reads_fast(requests, start_time)
        result = IoRunResult(start_time=start_time, end_time=start_time)
        window = QueueDepthWindow(self.queue_depth)
        for request in requests:
            earliest = window.earliest(start_time)
            issued = self.cpu.issue_io(max(earliest, start_time))
            ctrl_done = self._reserve_controller(issued)
            device = self.ssd.read_lpns(request.lpns, ctrl_done,
                                        with_data=with_data)
            fetched = len(request.lpns) * self.ssd.page_size
            transfer = self.link.transfer(fetched, device.end_time)
            done = transfer.end_time
            if request.placement_chunk is not None:
                done = self.cpu.copy(request.useful_bytes, done,
                                     request.placement_chunk)
            window.complete(done)
            result.completions.append(done)
            result.useful_bytes += request.useful_bytes
            result.fetched_bytes += fetched
            result.stats.merge(device.stats)
            result.data.append(device.data if with_data else None)
            if done > result.end_time:
                result.end_time = done
        result.stats.count("io_requests", len(requests))
        return result

    def _run_reads_fast(self, requests: Sequence[IoRequest],
                        start_time: float) -> IoRunResult:
        """Per-request flow of :meth:`run_reads` with every layer's
        Timeline bookkeeping inlined and the stat-dict churn hoisted to
        batch totals. The float operations — reserve chains per request
        in FCFS order, per-op time accumulators — happen in the exact
        sequence of the instrumentable path, so timings, busy times and
        stats are bit-identical; only object/dict allocations go away.
        Guarded by :meth:`_can_fast_path` (timing-only, no trace /
        metrics / faults / observers)."""
        result = IoRunResult(start_time=start_time, end_time=start_time)
        window = QueueDepthWindow(self.queue_depth)
        cpu = self.cpu
        link = self.link
        ssd = self.ssd
        flash = ssd.flash
        check_lpns = ssd._check_lpns
        map_get = ssd.ftl.map.get
        read_chain = flash._read_chain
        issue_line = cpu.issue_line
        ctrl_line = self.controller_line
        link_line = link.line
        per_io = cpu.per_io_cost
        ctrl_time = self.controller_command_time
        link_overhead = link.command_overhead
        link_bandwidth = link.bandwidth
        page_size = ssd.page_size
        copy_time = cpu.memory.copy_time
        copy_servers = cpu.copy_lines.servers
        window_earliest = window.earliest
        window_complete = window.complete
        completions_append = result.completions.append
        data_append = result.data.append
        # per-op float accumulators, committed once at the end — the
        # additions happen in the same per-request order as add_time
        issue_time_acc = cpu.stats.times.get("host_issue", 0.0)
        copy_time_acc = cpu.stats.times.get("host_copy", 0.0)
        end_time = start_time
        useful_total = 0
        fetched_total = 0
        pages_total = 0
        unmapped_total = 0
        copies = 0
        copied_bytes = 0
        for request in requests:
            earliest = window_earliest(start_time)
            # host software stack (cpu.issue_io)
            issued = issue_line.free_at
            if issued < earliest:
                issued = earliest
            issued += per_io
            issue_line.free_at = issued
            issue_line.busy_time += per_io
            issue_line.ops += 1
            issue_time_acc += per_io
            # device controller command handling
            ctrl_done = ctrl_line.free_at
            if ctrl_done < issued:
                ctrl_done = issued
            ctrl_done += ctrl_time
            ctrl_line.free_at = ctrl_done
            ctrl_line.busy_time += ctrl_time
            ctrl_line.ops += 1
            # device: FTL map + flash fan-out (ssd.read_lpns)
            lpns = request.lpns
            check_lpns(lpns)
            ppas = [ppa for ppa in map(map_get, lpns) if ppa is not None]
            device_end = read_chain(ppas, ctrl_done)
            pages_total += len(ppas)
            unmapped_total += len(lpns) - len(ppas)
            # link data transfer
            fetched = len(lpns) * page_size
            duration = link_overhead + fetched / link_bandwidth
            link_start = link_line.free_at
            if link_start < device_end:
                link_start = device_end
            done = link_start + duration
            link_line.free_at = done
            link_line.busy_time += duration
            link_line.ops += 1
            # optional host placement copy (cpu.copy)
            useful = request.useful_bytes
            chunk = request.placement_chunk
            if chunk is not None:
                duration = copy_time(useful, chunk)
                core = copy_servers[0]
                for candidate in copy_servers[1:]:
                    if candidate.free_at < core.free_at:
                        core = candidate
                copy_start = core.free_at
                if copy_start < done:
                    copy_start = done
                done = copy_start + duration
                core.free_at = done
                core.busy_time += duration
                core.ops += 1
                copy_time_acc += duration
                copies += 1
                copied_bytes += useful
            window_complete(done)
            completions_append(done)
            useful_total += useful
            fetched_total += fetched
            data_append(None)
            if done > end_time:
                end_time = done
        if requests:
            cpu.stats.times["host_issue"] = issue_time_acc
            cpu_counters = cpu.stats.counters
            cpu_counters["host_ios"] = cpu_counters.get("host_ios", 0) \
                + len(requests)
            if copies:
                cpu.stats.times["host_copy"] = copy_time_acc
                cpu_counters["host_copies"] = \
                    cpu_counters.get("host_copies", 0) + copies
                cpu_counters["host_copied_bytes"] = \
                    cpu_counters.get("host_copied_bytes", 0) + copied_bytes
            flash.stats.count("pages_read", pages_total)
            link.stats.count("transfers", len(requests))
            link.stats.count("bytes", fetched_total)
        result.end_time = end_time
        result.useful_bytes = useful_total
        result.fetched_bytes = fetched_total
        if requests:
            result.stats.count("device_pages_read", pages_total)
            result.stats.count("device_pages_unmapped", unmapped_total)
        result.stats.count("io_requests", len(requests))
        return result

    def run_writes(self, requests: Sequence[IoRequest],
                   start_time: float = 0.0) -> IoRunResult:
        """Execute write requests in order under the queue-depth limit."""
        if self._can_fast_path(False):
            return self._run_writes_fast(requests, start_time)
        result = IoRunResult(start_time=start_time, end_time=start_time)
        window = QueueDepthWindow(self.queue_depth)
        for request in requests:
            earliest = window.earliest(start_time)
            issued = self.cpu.issue_io(max(earliest, start_time))
            if request.placement_chunk is not None:
                # Host gathers scattered application data into the DMA
                # buffer before the transfer (serialization cost, [P1]).
                issued = self.cpu.copy(request.useful_bytes, issued,
                                       request.placement_chunk)
            sent = len(request.lpns) * self.ssd.page_size
            transfer = self.link.transfer(sent, issued)
            ctrl_done = self._reserve_controller(transfer.end_time)
            device = self.ssd.write_lpns(request.lpns, ctrl_done,
                                         data=request.payload)
            done = device.end_time
            window.complete(done)
            result.completions.append(done)
            result.useful_bytes += request.useful_bytes
            result.fetched_bytes += sent
            result.stats.merge(device.stats)
            if done > result.end_time:
                result.end_time = done
        result.stats.count("io_requests", len(requests))
        return result

    def _run_writes_fast(self, requests: Sequence[IoRequest],
                         start_time: float) -> IoRunResult:
        """Host-side flow of :meth:`run_writes` with the CPU / link /
        controller Timeline bookkeeping inlined (same float-operation
        order — bit-identical); the device side still goes through
        :meth:`~repro.ftl.ssd.BaselineSSD.write_lpns`, which owns
        allocation and GC."""
        result = IoRunResult(start_time=start_time, end_time=start_time)
        window = QueueDepthWindow(self.queue_depth)
        cpu = self.cpu
        link = self.link
        ssd = self.ssd
        write_lpns = ssd.write_lpns
        issue_line = cpu.issue_line
        ctrl_line = self.controller_line
        link_line = link.line
        per_io = cpu.per_io_cost
        ctrl_time = self.controller_command_time
        link_overhead = link.command_overhead
        link_bandwidth = link.bandwidth
        page_size = ssd.page_size
        copy_time = cpu.memory.copy_time
        copy_servers = cpu.copy_lines.servers
        window_earliest = window.earliest
        window_complete = window.complete
        completions_append = result.completions.append
        merge = result.stats.merge
        issue_time_acc = cpu.stats.times.get("host_issue", 0.0)
        copy_time_acc = cpu.stats.times.get("host_copy", 0.0)
        end_time = start_time
        useful_total = 0
        sent_total = 0
        copies = 0
        copied_bytes = 0
        for request in requests:
            earliest = window_earliest(start_time)
            # host software stack (cpu.issue_io)
            issued = issue_line.free_at
            if issued < earliest:
                issued = earliest
            issued += per_io
            issue_line.free_at = issued
            issue_line.busy_time += per_io
            issue_line.ops += 1
            issue_time_acc += per_io
            # host gather copy into the DMA buffer (cpu.copy)
            useful = request.useful_bytes
            chunk = request.placement_chunk
            if chunk is not None:
                duration = copy_time(useful, chunk)
                core = copy_servers[0]
                for candidate in copy_servers[1:]:
                    if candidate.free_at < core.free_at:
                        core = candidate
                copy_start = core.free_at
                if copy_start < issued:
                    copy_start = issued
                issued = copy_start + duration
                core.free_at = issued
                core.busy_time += duration
                core.ops += 1
                copy_time_acc += duration
                copies += 1
                copied_bytes += useful
            # link data transfer
            sent = len(request.lpns) * page_size
            duration = link_overhead + sent / link_bandwidth
            link_start = link_line.free_at
            if link_start < issued:
                link_start = issued
            link_end = link_start + duration
            link_line.free_at = link_end
            link_line.busy_time += duration
            link_line.ops += 1
            # device controller command handling
            ctrl_done = ctrl_line.free_at
            if ctrl_done < link_end:
                ctrl_done = link_end
            ctrl_done += ctrl_time
            ctrl_line.free_at = ctrl_done
            ctrl_line.busy_time += ctrl_time
            ctrl_line.ops += 1
            # device: allocation, programs, GC (unchanged call)
            device = write_lpns(request.lpns, ctrl_done,
                                data=request.payload)
            done = device.end_time
            window_complete(done)
            completions_append(done)
            useful_total += useful
            sent_total += sent
            merge(device.stats)
            if done > end_time:
                end_time = done
        if requests:
            cpu.stats.times["host_issue"] = issue_time_acc
            cpu_counters = cpu.stats.counters
            cpu_counters["host_ios"] = cpu_counters.get("host_ios", 0) \
                + len(requests)
            if copies:
                cpu.stats.times["host_copy"] = copy_time_acc
                cpu_counters["host_copies"] = \
                    cpu_counters.get("host_copies", 0) + copies
                cpu_counters["host_copied_bytes"] = \
                    cpu_counters.get("host_copied_bytes", 0) + copied_bytes
            link.stats.count("transfers", len(requests))
            link.stats.count("bytes", sent_total)
        result.end_time = end_time
        result.useful_bytes = useful_total
        result.fetched_bytes = sent_total
        result.stats.count("io_requests", len(requests))
        return result

    def reset_time(self) -> None:
        self.ssd.reset_time()
        self.link.reset_time()
        self.cpu.reset_time()
        self.controller_line.reset()
