"""Tests for the paper-scale projection helpers."""

import pytest

from repro.analysis.scaling import ScalePolicy, project_count, project_duration


class TestScalePolicy:
    def test_volume_factor(self):
        assert ScalePolicy(axis_factor=16, rank=2).volume_factor == 256
        assert ScalePolicy(axis_factor=8, rank=3).volume_factor == 512

    def test_describe(self):
        text = ScalePolicy(axis_factor=16, rank=2).describe()
        assert "1/16" in text and "1/256" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ScalePolicy(axis_factor=0.5)
        with pytest.raises(ValueError):
            ScalePolicy(axis_factor=2, rank=0)


class TestProjection:
    def test_volume_bound_duration(self):
        policy = ScalePolicy(axis_factor=4, rank=2)
        assert project_duration(1.0, policy) == pytest.approx(16.0)

    def test_axis_bound_duration(self):
        policy = ScalePolicy(axis_factor=4, rank=2)
        assert project_duration(1.0, policy,
                                volume_bound=False) == pytest.approx(4.0)

    def test_count_rounds(self):
        policy = ScalePolicy(axis_factor=16, rank=2)
        assert project_count(10, policy) == 2560
        assert project_count(3, policy, volume_bound=False) == 48

    def test_ratios_are_scale_invariant(self):
        """Speedups of two volume-bound durations are unchanged by the
        projection — the property the reproduction relies on."""
        policy = ScalePolicy(axis_factor=16, rank=2)
        baseline, nds = 0.5, 0.1
        assert (project_duration(baseline, policy)
                / project_duration(nds, policy)) == pytest.approx(
                    baseline / nds)
