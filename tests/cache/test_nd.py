"""Unit tests for the N-D cache helpers (keys, overlap, prefetch plan)."""

from repro.cache.nd import neighbor_regions, slices_overlap


class TestSlicesOverlap:
    def test_overlapping(self):
        assert slices_overlap(((0, 8), (0, 8)), ((4, 12), (4, 12)))

    def test_touching_edges_do_not_overlap(self):
        assert not slices_overlap(((0, 8),), ((8, 16),))

    def test_disjoint_on_one_axis_is_enough(self):
        assert not slices_overlap(((0, 8), (0, 8)), ((0, 8), (8, 16)))


class TestNeighborRegions:
    def test_axis_major_nearest_first(self):
        regions = neighbor_regions((64, 64), (0, 0), (16, 16), depth=2)
        assert regions == [((16, 0), (16, 16)), ((32, 0), (16, 16)),
                           ((0, 16), (16, 16)), ((0, 32), (16, 16))]

    def test_clipped_at_the_bound(self):
        regions = neighbor_regions((32,), (16,), (16,), depth=4)
        assert regions == []

    def test_full_axis_emits_nothing(self):
        regions = neighbor_regions((64, 64), (0, 0), (64, 16), depth=2)
        assert all(origin[0] == 0 for origin, _ in regions)
        assert regions == [((0, 16), (64, 16)), ((0, 32), (64, 16))]

    def test_depth_zero_disables(self):
        assert neighbor_regions((64,), (0,), (16,), depth=0) == []
