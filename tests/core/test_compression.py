"""Tests for §5.3.4 building-block-granular compression."""

import numpy as np
import pytest

from repro.core import SpaceTranslationLayer, ZlibCompressor
from repro.core.api import array_to_bytes, bytes_to_array
from repro.core.compression import HEADER_BYTES
from repro.nvm import FlashArray, TINY_TEST


@pytest.fixture
def compressed_stl():
    flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                       store_data=True)
    return SpaceTranslationLayer(flash, compressor=ZlibCompressor())


class TestCodec:
    def test_roundtrip(self, rng):
        codec = ZlibCompressor()
        raw = rng.integers(0, 4, 4096).astype(np.uint8)  # compressible
        stored = codec.compress_block(raw)
        assert stored.size < raw.size
        back = codec.decompress_block(stored, raw.size)
        assert np.array_equal(back, raw)

    def test_incompressible_passthrough(self, rng):
        codec = ZlibCompressor()
        raw = rng.integers(0, 256, 4096).astype(np.uint8)
        stored = codec.compress_block(raw)
        assert stored.size <= raw.size + HEADER_BYTES
        assert np.array_equal(codec.decompress_block(stored, raw.size), raw)

    def test_padded_read_back(self, rng):
        """Stored payload may carry page padding beyond the payload."""
        codec = ZlibCompressor()
        raw = np.zeros(1024, dtype=np.uint8)
        stored = codec.compress_block(raw)
        padded = np.concatenate(
            [stored, np.zeros(256 - stored.size % 256, np.uint8)])
        assert np.array_equal(codec.decompress_block(padded, raw.size), raw)

    def test_bad_magic_rejected(self):
        codec = ZlibCompressor()
        with pytest.raises(ValueError):
            codec.decompress_block(np.zeros(64, dtype=np.uint8), 16)

    def test_stats(self, rng):
        codec = ZlibCompressor()
        codec.compress_block(np.zeros(4096, dtype=np.uint8))
        assert codec.stats.blocks_compressed == 1
        assert codec.stats.ratio < 0.1

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            ZlibCompressor(level=10)


class TestStlIntegration:
    def test_compressed_roundtrip(self, compressed_stl, rng):
        stl = compressed_stl
        space = stl.create_space((32, 32), 4)
        data = (rng.integers(0, 4, (32, 32)) * 100).astype(np.int32)
        stl.write(space.space_id, (0, 0), (32, 32),
                  data=array_to_bytes(data))
        result = stl.read(space.space_id, (0, 0), (32, 32))
        assert np.array_equal(bytes_to_array(result.data, np.int32), data)

    def test_compressible_data_uses_fewer_units(self, rng):
        def units_used(compressor):
            flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                               store_data=True)
            stl = SpaceTranslationLayer(flash, compressor=compressor)
            space = stl.create_space((32, 32), 4)
            data = np.zeros((32, 32), dtype=np.int32)  # highly compressible
            result = stl.write(space.space_id, (0, 0), (32, 32),
                               data=array_to_bytes(data))
            return sum(block.units_allocated for block in result.blocks)

        assert units_used(ZlibCompressor()) < units_used(None)

    def test_partial_overwrite_preserves_rest(self, compressed_stl, rng):
        stl = compressed_stl
        space = stl.create_space((32, 32), 4)
        base = rng.integers(0, 4, (32, 32)).astype(np.int32)
        stl.write(space.space_id, (0, 0), (32, 32),
                  data=array_to_bytes(base))
        patch = rng.integers(10, 14, (5, 7)).astype(np.int32)
        stl.write_region(space.space_id, (3, 4), (5, 7),
                         data=array_to_bytes(patch))
        result = stl.read(space.space_id, (0, 0), (32, 32))
        merged = bytes_to_array(result.data, np.int32)
        expected = base.copy()
        expected[3:8, 4:11] = patch
        assert np.array_equal(merged, expected)

    def test_partial_read_of_compressed_block(self, compressed_stl, rng):
        stl = compressed_stl
        space = stl.create_space((32, 32), 4)
        data = rng.integers(0, 4, (32, 32)).astype(np.int32)
        stl.write(space.space_id, (0, 0), (32, 32),
                  data=array_to_bytes(data))
        result = stl.read_region(space.space_id, (5, 9), (11, 13))
        assert np.array_equal(bytes_to_array(result.data, np.int32),
                              data[5:16, 9:22])

    def test_timing_only_mode_rejected(self):
        flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                           store_data=False)
        with pytest.raises(ValueError):
            SpaceTranslationLayer(flash, compressor=ZlibCompressor())

    def test_incompressible_never_exceeds_raw_much(self, rng):
        flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                           store_data=True)
        stl = SpaceTranslationLayer(flash, compressor=ZlibCompressor())
        space = stl.create_space((16, 16), 4)
        data = rng.integers(0, 2**31, (16, 16)).astype(np.int32)
        result = stl.write(space.space_id, (0, 0), (16, 16),
                           data=array_to_bytes(data))
        units = sum(block.units_allocated for block in result.blocks)
        raw_pages = space.total_blocks * space.pages_per_block
        assert units <= raw_pages + space.total_blocks  # +1 header page max
        back = stl.read(space.space_id, (0, 0), (16, 16))
        assert np.array_equal(bytes_to_array(back.data, np.int32), data)
