"""Process-per-device pool execution must be byte-identical to serial.

``DevicePool(parallel=N)`` forks N workers that own the device systems;
the host translation layer ships one sub-op batch per worker per op and
folds results deterministically. Every observable — op timings,
accounting, device reports (fetched over worker RPC), GC coordinator
stats — must match the serial pool bit for bit, for any worker count.
"""

import json

import pytest

from repro.nvm import PAPER_PROTOTYPE
from repro.systems import SoftwareNdsSystem
from repro.workloads.gemm import GemmWorkload


def _scenario_sig(parallel, devices=3):
    system = SoftwareNdsSystem(PAPER_PROTOTYPE, store_data=False,
                               devices=devices, parallel=parallel)
    workload = GemmWorkload(n=512, tile=128, max_tiles=10)
    for ds in workload.datasets():
        system.ingest(ds.name, ds.dims, ds.element_size)
    system.reset_time()
    sigs = []
    for fetch in workload.tile_plan():
        res = system.read_tile(fetch.dataset, fetch.origin, fetch.extents)
        sigs.append((res.start_time.hex(), res.end_time.hex(),
                     res.useful_bytes, res.fetched_bytes, res.requests))
    first = workload.tile_plan()[0]
    wres = system.write_tile(first.dataset, first.origin, first.extents)
    sigs.append((wres.start_time.hex(), wres.end_time.hex(),
                 wres.useful_bytes, wres.fetched_bytes, wres.requests))
    report = system.device_report()
    gc_report = system.cluster.gc.gc_report()
    system.cluster.pool.close_workers()
    return json.dumps([sigs, report, gc_report], sort_keys=True,
                      default=str)


@pytest.mark.parametrize("parallel", [1, 2, 4])
def test_parallel_pool_byte_identical(parallel):
    assert _scenario_sig(parallel) == _scenario_sig(0)


def test_parallel_refuses_rebalance():
    system = SoftwareNdsSystem(PAPER_PROTOTYPE, devices=2, parallel=2)
    system.cluster.rebalance = object()
    with pytest.raises(RuntimeError, match="rebalanc"):
        system.ingest("x", (256, 256), 4)


def test_parallel_refuses_post_spawn_observers():
    system = SoftwareNdsSystem(PAPER_PROTOTYPE, devices=2, parallel=2)
    system.ingest("x", (256, 256), 4)
    with pytest.raises(RuntimeError, match="trace"):
        system.cluster.set_trace(object())
    with pytest.raises(RuntimeError, match="metrics"):
        system.cluster.set_metrics(object())
    system.cluster.pool.close_workers()


def test_parallel_refuses_kill_plans():
    system = SoftwareNdsSystem(PAPER_PROTOTYPE, devices=2, parallel=2)
    system.cluster.pool.schedule_kill(1, at=0.5)
    with pytest.raises(RuntimeError, match="kill"):
        system.ingest("x", (256, 256), 4)
