"""Property-based gates on embedding serving (hypothesis).

The serving story writes single rows at high frequency — exactly the
churn that drives garbage collection and (with an injector attached)
retry/relocation paths. The invariant: whatever the storage stack does
underneath — GC moves, read retries, program-fail relocations — a row
read must always return the bytes of the *last* write to that row,
matching a plain numpy mirror.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.model import FaultConfig
from repro.nvm.profiles import TINY_TEST
from repro.systems import HardwareNdsSystem, SoftwareNdsSystem
from repro.traffic.popularity import ZipfPopularity
from repro.workloads.embedding import EmbeddingWorkload

ROWS, DIM = 48, 16  # 48*16*4B = 3KB of 128KB — room for GC churn


def _drive_churn(system, mirror, rows, updates):
    """Apply seeded single-row updates, tracking a numpy mirror."""
    clock = 0.0
    for step, row in enumerate(rows):
        patch = np.full((1, DIM), (step * 37 + row) % 251,
                        dtype=np.float32)
        result = system.write_tile("emb0", (row, 0), (1, DIM), data=patch,
                                   start_time=clock)
        clock = result.end_time
        mirror = mirror.copy()
        mirror[row] = patch[0]
    return mirror, clock


@settings(max_examples=12, deadline=None)
@given(st.data())
def test_readback_equality_under_update_churn(data):
    """Zipf-skewed row updates (the training half of serving traffic)
    followed by read-back of every touched row: bytes must equal the
    numpy mirror on both STL systems."""
    system_cls = data.draw(st.sampled_from([SoftwareNdsSystem,
                                            HardwareNdsSystem]))
    seed = data.draw(st.integers(0, 2 ** 16))
    system = system_cls(TINY_TEST, store_data=True)
    rng = np.random.default_rng(seed)
    mirror = rng.standard_normal((ROWS, DIM)).astype(np.float32)
    system.ingest("emb0", (ROWS, DIM), 4, data=mirror)

    popularity = ZipfPopularity(ROWS, 1.1, seed=seed)
    count = data.draw(st.integers(10, 120))
    rows = [popularity.sample() for _ in range(count)]
    mirror, clock = _drive_churn(system, mirror, rows, count)

    for row in sorted(set(rows)):
        result = system.read_tile("emb0", (row, 0), (1, DIM),
                                  start_time=clock, with_data=True,
                                  dtype=np.dtype(np.float32))
        clock = result.end_time
        np.testing.assert_array_equal(result.data[0], mirror[row])


@settings(max_examples=8, deadline=None)
@given(st.data())
def test_readback_equality_under_fault_churn(data):
    """Same invariant with a fault injector attached: ECC retries and
    program-fail relocations may cost time but never corrupt rows."""
    seed = data.draw(st.integers(0, 2 ** 16))
    faults = FaultConfig(seed=seed, rber_base=2e-3,
                         program_fail_base=0.02)
    system = SoftwareNdsSystem(TINY_TEST, store_data=True, faults=faults)
    rng = np.random.default_rng(seed)
    mirror = rng.standard_normal((ROWS, DIM)).astype(np.float32)
    system.ingest("emb0", (ROWS, DIM), 4, data=mirror)

    popularity = ZipfPopularity(ROWS, 1.1, seed=seed + 1)
    count = data.draw(st.integers(10, 80))
    rows = [popularity.sample() for _ in range(count)]
    mirror, clock = _drive_churn(system, mirror, rows, count)

    for row in sorted(set(rows)):
        result = system.read_tile("emb0", (row, 0), (1, DIM),
                                  start_time=clock, with_data=True,
                                  dtype=np.dtype(np.float32))
        clock = result.end_time
        np.testing.assert_array_equal(result.data[0], mirror[row])


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 2 ** 16))
def test_gc_pressure_keeps_rows_exact(seed):
    """Hammer a hot set hard enough to exhaust free access units and
    force GC, then verify the full table matches the mirror."""
    system = SoftwareNdsSystem(TINY_TEST, store_data=True)
    rng = np.random.default_rng(seed)
    mirror = rng.standard_normal((ROWS, DIM)).astype(np.float32)
    system.ingest("emb0", (ROWS, DIM), 4, data=mirror)

    hot = ZipfPopularity(ROWS, 1.3, seed=seed)
    rows = [hot.sample() for _ in range(400)]  # >> free units
    mirror, clock = _drive_churn(system, mirror, rows, len(rows))

    result = system.read_tile("emb0", (0, 0), (ROWS, DIM),
                              start_time=clock, with_data=True,
                              dtype=np.dtype(np.float32))
    np.testing.assert_array_equal(result.data, mirror)


def test_request_factory_rows_stay_in_table():
    wl = EmbeddingWorkload(num_embeddings=ROWS, embedding_dim=DIM,
                           update_fraction=0.5, seed=0)
    factory = wl.request_factory()
    for seq in range(50):
        for op in factory(seq, 0.0):
            assert 0 <= op.origin[0] < ROWS
            assert op.extents == (1, DIM)
