"""Every number the paper reports, in one place.

Benchmarks compare their measurements against these anchors and
EXPERIMENTS.md records the deltas. Values are quoted from the paper's
text (sections noted).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperNumbers", "PAPER"]


@dataclass(frozen=True)
class PaperNumbers:
    # §1 / §7.2 — headline results
    software_nds_speedup: float = 5.07
    hardware_nds_speedup: float = 5.73
    hardware_over_software: float = 1.13
    software_idle_reduction: float = 0.74
    hardware_idle_reduction: float = 0.76
    object_build_speedup: float = 1.52

    # §2.1 — motivation
    fig2a_row_store_slowdown: float = 2.11
    fig2b_fetch_slowdown: float = 1.92
    link_efficiency_at_32k: float = 0.66
    link_saturation_bytes: int = 2 * 2**20

    # §2.2 — optimal tile dims (Fig. 3)
    cuda_optimal_dim: int = 2048
    tensor_optimal_dim: int = 512

    # §7.1 — microbenchmarks (Fig. 9)
    baseline_row_read_gbs: float = 4.3
    software_row_read_gbs: float = 3.8
    baseline_column_read_mbs_max: float = 600.0
    baseline_write_mbs: float = 281.0
    software_write_penalty: float = 0.30
    hardware_write_penalty: float = 0.17
    micro_matrix_dim: int = 32768
    micro_block_dim: int = 256

    # §7.2 — architecture
    internal_to_external_ratio: float = 8.0 / 5.0

    # §7.3 — overhead
    software_stl_latency_us: float = 41.0
    hardware_stl_latency_us: float = 17.0
    nand_page_read_us_range: tuple = (30.0, 100.0)
    stl_space_overhead_fraction: float = 0.001
    btree_leaf_max_pages: int = 512

    # §6.1 — platform
    channels: int = 32
    banks: int = 8
    page_bytes: int = 4096
    capacity_tb: float = 2.0
    overprovisioning: float = 0.10
    device_dram_gb: float = 4.0


PAPER = PaperNumbers()
