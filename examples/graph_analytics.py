#!/usr/bin/env python3
"""Graph analytics: BFS and SSSP sharing one stored dataset.

Table 1's first pair: BFS consumes the adjacency matrix row-
sequentially (the baseline's best case — "BFS receives almost no
benefit from the software-only NDS", §7.2), while Bellman-Ford relaxes
square edge blocks that cross the serialized layout. The same stored
bytes serve both — NDS's core pitch.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro.nvm import PAPER_PROTOTYPE, TINY_TEST
from repro.systems import BaselineSystem, HardwareNdsSystem, SoftwareNdsSystem
from repro.workloads import BfsWorkload, SsspWorkload, run_workload, speedup


def functional_demo() -> None:
    print("== functional check (64-node graph) ==")
    rng = np.random.default_rng(3)
    bfs = BfsWorkload(nodes=64, batch_rows=16)
    adjacency = bfs.generate(rng)["graph"]
    levels = bfs.reference({"graph": adjacency})
    print(f"  BFS reference: {int((levels >= 0).sum())}/64 nodes reachable, "
          f"max depth {int(levels.max())}")

    # store once, traverse through the device
    system = HardwareNdsSystem(TINY_TEST, store_data=True)
    system.ingest("graph", adjacency.shape, 4, data=adjacency)
    # BFS via per-batch row fetches from the device
    frontier = np.zeros(64, dtype=bool)
    frontier[0] = True
    device_levels = np.full(64, -1, dtype=np.int64)
    device_levels[0] = 0
    depth = 0
    while frontier.any():
        depth += 1
        reachable = np.zeros(64, dtype=bool)
        for row in np.flatnonzero(frontier):
            fetched = system.read_tile("graph", (int(row), 0), (1, 64),
                                       with_data=True, dtype=np.int32)
            reachable |= fetched.data[0] > 0
        frontier = reachable & (device_levels < 0)
        device_levels[frontier] = depth
    assert np.array_equal(device_levels, levels)
    print("  BFS over device-fetched rows matches the in-memory reference")

    sssp = SsspWorkload(nodes=64, segment=16)
    weights = sssp.generate(rng)["graph"]
    dist = sssp.reference({"graph": weights})
    print(f"  SSSP reference: {int(np.isfinite(dist).sum())}/64 nodes "
          f"reachable, mean distance {np.mean(dist[np.isfinite(dist)]):.2f}")


def timing_demo() -> None:
    print("\n== end-to-end timing (4096-node graphs, Fig. 10 pipeline) ==")
    for workload in (BfsWorkload(), SsspWorkload()):
        results = {}
        for factory in (BaselineSystem, SoftwareNdsSystem,
                        HardwareNdsSystem):
            system = factory(PAPER_PROTOTYPE)
            results[system.name] = run_workload(workload, system)
        base = results["baseline"]
        line = "  ".join(
            f"{name} {speedup(base, result):.2f}x"
            for name, result in results.items())
        print(f"  {workload.name:5s}: {line}")
    print("BFS ~1x (row-sequential suits the baseline), SSSP gains: the "
          "same NDS dataset serves both access patterns (paper §7.2).")


def main() -> None:
    functional_demo()
    timing_demo()


if __name__ == "__main__":
    main()
