"""Reporting and paper-number calibration."""

from repro.analysis.calibration import PAPER, PaperNumbers
from repro.analysis.isolation import channel_overlap, isolation_sweep
from repro.analysis.reliability import reliability_sweep
from repro.analysis.report import (comparison_row, format_bandwidth,
                                   format_ratio, format_table)

__all__ = [
    "PAPER",
    "PaperNumbers",
    "format_table",
    "format_bandwidth",
    "format_ratio",
    "comparison_row",
    "reliability_sweep",
    "isolation_sweep",
    "channel_overlap",
]
