"""Integration: the binary-command device and the systems layer agree.

The same STL core backs both entry points; the bytes delivered for any
tile must be identical whether the request arrives as a decoded API
call (HardwareNdsSystem) or as a raw encoded NVMe command (NdsDevice).
"""

import numpy as np
import pytest

from repro.core import NdsDevice, bytes_to_array
from repro.interconnect import NvmeOpcode
from repro.interconnect.encoding import encode_command
from repro.nvm import TINY_TEST
from repro.systems import HardwareNdsSystem


@pytest.fixture
def matrix(rng):
    return rng.integers(0, 2**31, (64, 64)).astype(np.int32)


def test_device_and_system_deliver_identical_tiles(matrix):
    system = HardwareNdsSystem(TINY_TEST, store_data=True)
    system.ingest("m", (64, 64), 4, data=matrix)

    device = NdsDevice(TINY_TEST, store_data=True)
    opened = device.submit(encode_command(NvmeOpcode.OPEN_SPACE,
                                          dims=(64, 64)))
    device.submit(encode_command(NvmeOpcode.ND_WRITE,
                                 space_id=opened.space_id,
                                 coordinate=(0, 0), sub_dim=(64, 64)),
                  payload=matrix)

    for coordinate, sub_dim in [((0, 0), (16, 16)), ((3, 1), (16, 32)),
                                ((1, 1), (32, 32))]:
        origin = tuple(c * f for c, f in zip(coordinate, sub_dim))
        via_system = system.read_tile("m", origin, sub_dim,
                                      with_data=True, dtype=np.int32).data
        completion = device.submit(
            encode_command(NvmeOpcode.ND_READ, space_id=opened.space_id,
                           coordinate=coordinate, sub_dim=sub_dim))
        via_device = bytes_to_array(completion.data, np.int32)
        assert np.array_equal(via_system, via_device)
        expected = matrix[origin[0]:origin[0] + sub_dim[0],
                          origin[1]:origin[1] + sub_dim[1]]
        assert np.array_equal(via_device, expected)


def test_device_block_layout_matches_system(matrix):
    """Both entry points derive the same building-block geometry from
    the same device profile."""
    system = HardwareNdsSystem(TINY_TEST, store_data=False)
    system.ingest("m", (64, 64), 4)
    device = NdsDevice(TINY_TEST, store_data=False)
    opened = device.submit(encode_command(NvmeOpcode.OPEN_SPACE,
                                          dims=(64, 64)))
    assert (opened.fields["building_block"]
            == system.stl.get_space(1).bb)
