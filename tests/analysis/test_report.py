"""Tests for report formatting."""

from repro.analysis import (PAPER, comparison_row, format_bandwidth,
                            format_ratio, format_table)


class TestFormatBandwidth:
    def test_gigabytes(self):
        assert format_bandwidth(4.3e9) == "4.30 GB/s"

    def test_megabytes(self):
        assert format_bandwidth(281e6) == "281.0 MB/s"

    def test_kilobytes(self):
        assert format_bandwidth(12e3) == "12.0 KB/s"


def test_format_ratio():
    assert format_ratio(5.073) == "5.07x"


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "long-header"],
                            [[1, 2], ["wide-cell", 3]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert "long-header" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestComparisonRow:
    def test_delta_computed(self):
        row = comparison_row("speedup", 5.07, 4.89)
        assert row[0] == "speedup"
        assert row[1] == "5.07"
        assert row[3] == "-4%"

    def test_zero_paper_value(self):
        assert comparison_row("x", 0.0, 1.0)[3] == "n/a"

    def test_units(self):
        row = comparison_row("bw", 4.3, 4.5, unit="GB/s")
        assert row[1].endswith("GB/s")


def test_paper_numbers_are_frozen():
    assert PAPER.software_nds_speedup == 5.07
    assert PAPER.hardware_nds_speedup == 5.73
    assert PAPER.channels == 32
