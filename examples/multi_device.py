#!/usr/bin/env python3
"""Multi-device NDS: a host translation layer over a pool of SSDs.

Three acts, all deterministic:

1. **Declustering** — a matrix ingested into a 4-device
   ``SoftwareNdsSystem`` pool is split into row-band extents across the
   devices; a functional read-back proves the host layer reassembles
   the bytes exactly.
2. **Surviving a device loss** — the same workload runs under a
   :class:`~repro.faults.FaultPlan` that kills a whole device
   mid-run. Cross-device XOR parity serves every read through degraded
   reconstruction, the dead device's extents are rebuilt onto
   survivors, and the data still matches byte-for-byte.
3. **Scale-out sweep** — aggregate goodput for 1/2/4/8-device pools on
   all four architectures (``repro.analysis.scaleout_sweep``).

The JSON written to ``--out-dir`` is byte-stable: the CI
``scaleout-determinism`` job runs this twice and diffs the output.

Run:  python examples/multi_device.py [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.analysis.scaleout_sweep import format_sweep, scaleout_sweep
from repro.faults import FaultConfig, FaultPlan
from repro.nvm import TINY_TEST
from repro.systems import SoftwareNdsSystem

N = 64  # dataset edge (N*N elements, element_size=4)


def declustering_demo() -> dict:
    """Act 1: ingest across 4 devices, read back, inspect placement."""
    system = SoftwareNdsSystem(TINY_TEST, store_data=True, devices=4)
    data = np.random.default_rng(7).integers(
        0, 2**31, size=(N, N), dtype=np.int32)
    system.ingest("M", (N, N), 4, data=data)
    result = system.read_tile("M", (0, 0), (N, N), with_data=True,
                              dtype=np.dtype(np.int32))
    report = system.device_report()
    return {
        "devices": 4,
        "match": bool(np.array_equal(data, result.data)),
        "extents_per_device": {name: entry["extents_resident"]
                               for name, entry in sorted(report.items())},
    }


def device_kill_demo() -> dict:
    """Act 2: kill device 2 mid-run; parity keeps every read correct."""
    plan = FaultPlan().kill_device(2, at=0.02)  # after ingest settles
    faults = FaultConfig(parity=True, plan=plan)
    system = SoftwareNdsSystem(TINY_TEST, store_data=True, devices=4,
                               faults=faults)
    data = np.random.default_rng(11).integers(
        0, 2**31, size=(N, N), dtype=np.int32)
    system.ingest("M", (N, N), 4, data=data)

    band = N // 4
    matches = []
    now = 0.03  # after the kill fires
    for row in range(0, N, band):
        result = system.read_tile("M", (row, 0), (band, N),
                                  start_time=now, with_data=True,
                                  dtype=np.dtype(np.int32))
        matches.append(bool(np.array_equal(data[row:row + band], result.data)))
        now = result.end_time
    counters = system.fault_counters() or {}
    return {
        "killed_device": 2,
        "all_reads_match": all(matches),
        "degraded_reads": counters.get("cluster_degraded_reads", 0),
        "rebuilt_extents": counters.get("cluster_rebuilds", 0),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    args = parser.parse_args()

    print("== act 1: declustering across 4 devices ==")
    decluster = declustering_demo()
    print(f"  read-back match: {decluster['match']}")
    print(f"  extents per device: {decluster['extents_per_device']}")

    print("\n== act 2: whole-device kill under cross-device parity ==")
    kill = device_kill_demo()
    print(f"  device {kill['killed_device']} killed mid-run; "
          f"all reads match: {kill['all_reads_match']}")
    print(f"  degraded reads: {kill['degraded_reads']}, "
          f"extents rebuilt: {kill['rebuilt_extents']}")

    print("\n== act 3: scale-out sweep ==")
    sweep = scaleout_sweep()
    print(format_sweep(sweep))

    args.out_dir.mkdir(parents=True, exist_ok=True)
    out = args.out_dir / "multi_device.json"
    payload = {"declustering": decluster, "device_kill": kill,
               "sweep": sweep}
    out.write_text(json.dumps(payload, sort_keys=True, indent=2,
                              separators=(",", ": ")) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
