"""Consumer views: application-defined dimensionality over a space.

§3 of the paper lets a consumer define *its own* dimensionality for an
existing space "as long as the volumes of these two dimensionalities
match". The paper's Eq. 5 is underspecified for rank-changing views
(see DESIGN.md), so we implement three precise semantics:

* :class:`IdentityView` — consumer dims equal producer dims.
* :class:`TileGridView` — Figure 5's case: a producer space whose last
  axis enumerates K equal tiles is viewed as those tiles arranged in a
  grid (e.g. an (8192, 8192, 4) space viewed as a 16384×16384 matrix of
  2×2 quadrants).
* :class:`ReshapeView` — generic row-major reshape between volume-equal
  dimensionalities; requests decompose into producer boxes run by run.

Every view resolves a consumer request to a list of
:class:`RegionMap` — producer regions plus their placement inside the
consumer's request buffer — which the STL feeds to the translator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.errors import InvalidCoordinateError, ViewVolumeError

__all__ = ["RegionMap", "View", "IdentityView", "TileGridView",
           "ReshapeView", "linear_range_to_boxes"]


@dataclass(frozen=True)
class RegionMap:
    """One producer region backing part of a consumer request.

    ``out_origin`` locates the region inside the consumer request
    buffer, whose shape is ``out_extents`` (the producer region's
    extents re-arranged into the consumer's axes).
    """

    producer_origin: Tuple[int, ...]
    producer_extents: Tuple[int, ...]
    out_origin: Tuple[int, ...]
    out_extents: Tuple[int, ...]


def _volume(dims: Sequence[int]) -> int:
    product = 1
    for extent in dims:
        product *= extent
    return product


def _check_region(dims: Sequence[int], origin: Sequence[int],
                  extents: Sequence[int]) -> None:
    if len(origin) != len(dims) or len(extents) != len(dims):
        raise InvalidCoordinateError("request rank does not match view rank")
    for axis, (o, f, d) in enumerate(zip(origin, extents, dims)):
        if f < 1 or o < 0 or o + f > d:
            raise InvalidCoordinateError(
                f"view region [{o}, {o + f}) exceeds extent {d} on axis {axis}")


class View:
    """A consumer's dimensionality over a producer space."""

    #: consumer-visible dimensionality
    dims: Tuple[int, ...]

    def resolve(self, origin: Sequence[int],
                extents: Sequence[int]) -> List[RegionMap]:
        raise NotImplementedError


class IdentityView(View):
    """Consumer view identical to the producer space."""

    def __init__(self, dims: Sequence[int]) -> None:
        self.dims = tuple(dims)

    def resolve(self, origin: Sequence[int],
                extents: Sequence[int]) -> List[RegionMap]:
        _check_region(self.dims, origin, extents)
        return [RegionMap(tuple(origin), tuple(extents),
                          tuple(0 for _ in origin), tuple(extents))]


class TileGridView(View):
    """Tiles enumerated on the producer's last axis, arranged in a grid.

    The producer space has shape ``(t_1, ..., t_k, K)``; the consumer
    sees shape ``(t_1 * g_1, ..., t_k * g_k)`` where ``prod(g) == K``
    and tile ``(r_1, ..., r_k)`` of the grid is producer slab
    ``index = row-major(r)`` on the last axis.
    """

    def __init__(self, producer_dims: Sequence[int],
                 grid: Sequence[int]) -> None:
        producer_dims = tuple(producer_dims)
        grid = tuple(grid)
        if len(producer_dims) < 2:
            raise ViewVolumeError("tile-grid view needs a tile axis")
        tile = producer_dims[:-1]
        count = producer_dims[-1]
        if len(grid) != len(tile):
            raise ViewVolumeError("grid rank must match tile rank")
        if _volume(grid) != count:
            raise ViewVolumeError(
                f"grid {grid} does not enumerate {count} tiles")
        self.producer_dims = producer_dims
        self.tile = tile
        self.grid = grid
        self.dims = tuple(t * g for t, g in zip(tile, grid))

    def _tile_index(self, grid_coord: Sequence[int]) -> int:
        index = 0
        for g, c in zip(self.grid, grid_coord):
            index = index * g + c
        return index

    def resolve(self, origin: Sequence[int],
                extents: Sequence[int]) -> List[RegionMap]:
        _check_region(self.dims, origin, extents)
        axis_tiles = []
        for o, f, t in zip(origin, extents, self.tile):
            first = o // t
            last = (o + f - 1) // t
            axis_tiles.append(range(first, last + 1))
        regions: List[RegionMap] = []
        for grid_coord in itertools.product(*axis_tiles):
            producer_origin = []
            producer_extents = []
            out_origin = []
            out_extents = []
            for axis, r in enumerate(grid_coord):
                t = self.tile[axis]
                lo = max(origin[axis], r * t)
                hi = min(origin[axis] + extents[axis], (r + 1) * t)
                producer_origin.append(lo - r * t)
                producer_extents.append(hi - lo)
                out_origin.append(lo - origin[axis])
                out_extents.append(hi - lo)
            producer_origin.append(self._tile_index(grid_coord))
            producer_extents.append(1)
            regions.append(RegionMap(
                producer_origin=tuple(producer_origin),
                producer_extents=tuple(producer_extents),
                out_origin=tuple(out_origin),
                out_extents=tuple(out_extents),
            ))
        return regions


class ReshapeView(View):
    """Row-major reshape between volume-equal dimensionalities.

    A consumer request is decomposed into its contiguous last-axis runs;
    each run is one contiguous element range in row-major order, which
    maps to the identical range in the producer space and is then split
    into producer boxes.
    """

    def __init__(self, producer_dims: Sequence[int],
                 consumer_dims: Sequence[int]) -> None:
        self.producer_dims = tuple(producer_dims)
        self.dims = tuple(consumer_dims)
        if _volume(self.producer_dims) != _volume(self.dims):
            raise ViewVolumeError(
                f"view volume {_volume(self.dims)} != space volume "
                f"{_volume(self.producer_dims)} (§3 requires equality)")

    def resolve(self, origin: Sequence[int],
                extents: Sequence[int]) -> List[RegionMap]:
        _check_region(self.dims, origin, extents)
        # Consumer strides (row-major).
        strides = [1] * len(self.dims)
        for axis in range(len(self.dims) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * self.dims[axis + 1]
        run_length = extents[-1]
        regions: List[RegionMap] = []
        outer = [range(o, o + f) for o, f in zip(origin[:-1], extents[:-1])]
        for outer_coord in itertools.product(*outer):
            linear = origin[-1] * strides[-1]
            for axis, index in enumerate(outer_coord):
                linear += index * strides[axis]
            out_base = tuple(index - origin[axis]
                             for axis, index in enumerate(outer_coord))
            run_out = 0
            for box_origin, box_extents in linear_range_to_boxes(
                    self.producer_dims, linear, run_length):
                volume = _volume(box_extents)
                regions.append(RegionMap(
                    producer_origin=box_origin,
                    producer_extents=box_extents,
                    out_origin=out_base + (run_out,),
                    out_extents=tuple([1] * len(out_base) + [volume]),
                ))
                run_out += volume
        return regions


def linear_range_to_boxes(dims: Sequence[int], start: int, length: int,
                          ) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Decompose a row-major element range into axis-aligned boxes.

    Returns ``[(origin, extents), ...]`` in range order. A range splits
    into: a partial head row, a recursive decomposition of the full rows
    in the middle, and a partial tail row.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if length == 0:
        return []
    dims = tuple(dims)
    if len(dims) == 1:
        if start + length > dims[0]:
            raise ValueError("range exceeds array volume")
        return [((start,), (length,))]
    row = dims[-1]
    boxes: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []

    def coord_of_row(row_index: int) -> Tuple[int, ...]:
        coord = []
        remaining = row_index
        for extent in reversed(dims[:-1]):
            coord.append(remaining % extent)
            remaining //= extent
        if remaining:
            raise ValueError("range exceeds array volume")
        return tuple(reversed(coord))

    position = start
    end = start + length
    # Partial head row.
    if position % row != 0:
        head = min(end - position, row - position % row)
        boxes.append((coord_of_row(position // row) + (position % row,),
                      tuple([1] * (len(dims) - 1) + [head])))
        position += head
    # Full middle rows: a linear range over the row grid, recursively.
    full_rows = (end - position) // row
    if full_rows:
        for origin, extents in linear_range_to_boxes(
                dims[:-1], position // row, full_rows):
            boxes.append((origin + (0,), extents + (row,)))
        position += full_rows * row
    # Partial tail row.
    if position < end:
        boxes.append((coord_of_row(position // row) + (0,),
                      tuple([1] * (len(dims) - 1) + [end - position])))
    return boxes
