"""Regression: the bounded-heap :class:`QueueDepthWindow` must gate
exactly like the sorted-list implementation it replaced, including
out-of-order completions (multi-stream round-robin drains) and
duplicate completion times."""

from __future__ import annotations

import random
from bisect import insort
from typing import List, Optional

import pytest

from repro.runtime.scheduler import QueueDepthWindow


class ReferenceWindow:
    """The pre-heap implementation: every completion kept in a sorted
    list; the gate is the ``depth``-th largest."""

    def __init__(self, depth: Optional[int] = None) -> None:
        self.depth = depth
        self.completions: List[float] = []

    def earliest(self, submit_time: float) -> float:
        if self.depth is not None and len(self.completions) >= self.depth:
            return max(submit_time, self.completions[-self.depth])
        return submit_time

    def complete(self, time: float) -> None:
        insort(self.completions, time)

    def reset(self) -> None:
        self.completions.clear()


@pytest.mark.parametrize("depth", [1, 2, 3, 8, 32])
@pytest.mark.parametrize("seed", range(5))
def test_heap_matches_sorted_list_on_out_of_order_completions(depth, seed):
    rng = random.Random(seed)
    heap_window = QueueDepthWindow(depth)
    ref_window = ReferenceWindow(depth)
    clock = 0.0
    for step in range(500):
        action = rng.random()
        if action < 0.6:
            # complete at an out-of-order time: jitter around the
            # clock, occasionally repeating an earlier value exactly
            if rng.random() < 0.2 and ref_window.completions:
                time = rng.choice(ref_window.completions)
            else:
                time = clock + rng.uniform(-5.0, 5.0)
            heap_window.complete(time)
            ref_window.complete(time)
        else:
            submit = clock + rng.uniform(-2.0, 2.0)
            assert heap_window.earliest(submit) == \
                ref_window.earliest(submit), f"diverged at step {step}"
        clock += rng.uniform(0.0, 1.0)
    # drain check: a final sweep of probes across the whole range
    for probe in range(-10, int(clock) + 10):
        assert heap_window.earliest(float(probe)) == \
            ref_window.earliest(float(probe))


def test_unbounded_window_never_gates():
    window = QueueDepthWindow(None)
    for i in range(100):
        window.complete(float(i))
    assert window.earliest(3.5) == 3.5
    assert window.completed == 100


def test_reset_clears_gate():
    window = QueueDepthWindow(2)
    window.complete(10.0)
    window.complete(20.0)
    assert window.earliest(0.0) == 10.0
    window.reset()
    assert window.earliest(0.0) == 0.0
    assert window.completed == 0


def test_depth_validation():
    with pytest.raises(ValueError):
        QueueDepthWindow(0)
