"""The observability spine must be free when absent: with no trace and
no metrics registry attached, every timed path is bit-identical to an
instrumented run (exact float equality, not approx)."""

from __future__ import annotations

import pytest

from repro.nvm.profiles import TINY_TEST
from repro.obs.metrics import MetricsRegistry
from repro.runtime.tileop import TileOp
from repro.runtime.trace import TraceRecorder
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)

ALL_SYSTEMS = [BaselineSystem, SoftwareNdsSystem, HardwareNdsSystem,
               OracleSystem]


def _run(factory, instrumented: bool):
    system = factory(TINY_TEST, store_data=False)
    if factory is OracleSystem:
        system.ingest("d", (64, 64), 4, tile=(16, 16))
    else:
        system.ingest("d", (64, 64), 4)
    system.reset_time()
    if instrumented:
        system.set_trace(TraceRecorder())
        system.set_metrics(MetricsRegistry())
    timings = []
    scheduler = system.scheduler
    scheduler.stream("t", 2)
    for origin in ((0, 0), (16, 16), (32, 32), (48, 0)):
        scheduler.submit(TileOp.read("d", origin, (16, 16),
                                     submit_time=0.0, stream="t"))
    for op in scheduler.drain():
        timings.append((op.result.start_time, op.result.end_time))
    write = system.write_tile("d", (0, 0), (16, 16), start_time=1.0)
    timings.append((write.start_time, write.end_time))
    return timings


@pytest.mark.parametrize("factory", ALL_SYSTEMS,
                         ids=[f.name for f in ALL_SYSTEMS])
def test_instrumentation_is_timing_neutral(factory):
    assert _run(factory, False) == _run(factory, True)


@pytest.mark.parametrize("factory", ALL_SYSTEMS,
                         ids=[f.name for f in ALL_SYSTEMS])
def test_detach_restores_uninstrumented_state(factory):
    system = factory(TINY_TEST, store_data=False)
    system.set_trace(TraceRecorder())
    system.set_metrics(MetricsRegistry())
    system.set_trace(None)
    system.set_metrics(None)
    assert system.scheduler.trace is None
    assert system.scheduler.metrics is None
    for holder in (system, getattr(system, "ssd", None)):
        flash = getattr(holder, "flash", None)
        if flash is not None:
            assert flash.trace is None
            assert flash.metrics is None
            assert all(line.observer is None
                       for line in flash.channel_lines)


def test_metrics_capture_layer_activity():
    """With a registry attached, every layer a read touches shows up."""
    system = HardwareNdsSystem(TINY_TEST, store_data=False)
    system.ingest("d", (64, 64), 4)
    system.reset_time()
    registry = MetricsRegistry()
    system.set_metrics(registry)
    system.read_tile("d", (16, 16), (32, 32))
    snap = registry.snapshot()
    for metric in ("ctrl.command", "ctrl.translate", "ctrl.assemble",
                   "flash.nand_read", "flash.page_out", "link.transfer",
                   "sched.latency"):
        assert snap["histograms"][metric]["count"] > 0, metric
    assert snap["counters"]["flash.pages_read"] > 0
    assert snap["counters"]["link.bytes"] > 0
    # per-timeline busy counters came through the reserve observer
    assert snap["counters"]["timeline.ch0.busy_seconds"] > 0
