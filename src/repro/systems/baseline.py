"""The baseline architecture: conventional SSD + host marshalling
(paper Fig. 7(a)).

Datasets are serialized row-major (or column-major) into the linear LBA
space; the FTL stripes consecutive pages over channels. Fetching a tile
therefore requires one I/O request per contiguous run (typically per
tile row, [P1]); each request is small ([P2]); the runs of
column-crossing tiles concentrate on a subset of channels ([P3]); and
the host CPU must place every run into the tile buffer (marshalling).
Tiles that *are* contiguous in the serialized layout (full-width reads)
coalesce into large, DMA-direct requests — the baseline's best case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.config import CacheConfig
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultConfig
from repro.ftl.ssd import BaselineSSD
from repro.host.cpu import HostCpu
from repro.host.io_engine import HostIoEngine, IoRequest
from repro.interconnect.link import Link
from repro.nvm.profiles import DeviceProfile
from repro.systems.base import StorageSystem, SystemOpResult, row_runs

__all__ = ["BaselineSystem", "LpnTierOps"]

#: request size at which the interconnect saturates (§2.1 [P2])
DEFAULT_MAX_REQUEST_BYTES = 2 * 2**20


@dataclass
class _Dataset:
    start_page: int
    dims: Tuple[int, ...]
    element_size: int
    layout: str  # "row" or "col"

    @property
    def layout_dims(self) -> Tuple[int, ...]:
        if self.layout == "col" and len(self.dims) == 2:
            return (self.dims[1], self.dims[0])
        return self.dims

    def to_layout(self, origin: Sequence[int],
                  extents: Sequence[int]) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        if self.layout == "col" and len(self.dims) == 2:
            return (origin[1], origin[0]), (extents[1], extents[0])
        return tuple(origin), tuple(extents)


class LpnTierOps:
    """DRAM-tier glue shared by the linear (LPN-addressed) systems.

    Entries are whole request runs keyed ``("lpn", first, last)`` with
    the originating :class:`IoRequest` as payload, so a write-back
    flush replays the exact request through the host I/O engine."""

    def _flush_cache_entry(self, entry, now: float) -> float:
        """Write one buffered dirty run back through the I/O engine, so
        a deferred flush costs exactly what the write would have."""
        return self.engine.run_writes([entry.payload], now).end_time

    def _flush_overlapping_lpns(self, first: int, last: int, now: float,
                                invalidate: bool = False) -> float:
        """Flush buffered dirty runs overlapping [first, last]; with
        ``invalidate`` the caller is overwriting the range, so exact
        covers are dropped unflushed and partial overlaps are flushed
        (they hold bytes outside the overwritten range) then dropped."""
        tier = self.tier
        for key in list(tier.entries):
            if not (key[1] <= last and first <= key[2]):
                continue
            entry = tier.get(key)
            if entry is None:
                continue
            covered = first <= key[1] and key[2] <= last
            if entry.dirty and not (invalidate and covered):
                now = tier.flush_entry(key, now)
            if invalidate:
                tier.invalidate(key)
        return now

    def _invalidate_overlapping_lpns(self, first: int, last: int) -> None:
        tier = self.tier
        for key in list(tier.entries):
            if key[1] <= last and first <= key[2]:
                tier.invalidate(key)


class BaselineSystem(LpnTierOps, StorageSystem):
    """Conventional SSD system with host-side data restructuring."""

    name = "baseline"

    def __init__(self, profile: DeviceProfile, store_data: bool = False,
                 queue_depth: int = 32,
                 max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
                 cpu: Optional[HostCpu] = None,
                 cache_pages: int = 0,
                 faults: Optional["FaultConfig"] = None,
                 devices: int = 1, pool=None,
                 extents_per_device: int = 1, rebalance=None,
                 cache: Optional[CacheConfig] = None,
                 parallel: int = 0) -> None:
        self.profile = profile
        self.store_data = store_data
        self.max_request_bytes = max_request_bytes
        self.page_size = profile.geometry.page_size
        if self._init_cluster(
                devices, pool, faults, rebalance, extents_per_device,
                lambda i, f: BaselineSystem(
                    profile, store_data=store_data, queue_depth=queue_depth,
                    max_request_bytes=max_request_bytes,
                    cache_pages=cache_pages, faults=f, cache=cache),
                parallel=parallel):
            return
        self.ssd = BaselineSSD(profile, store_data=store_data)
        if faults is not None:
            self.ssd.flash.attach_faults(FaultInjector(faults))
        self.link = Link(profile.link_bandwidth, profile.link_command_overhead)
        self.cpu = cpu if cpu is not None else HostCpu()
        self.engine = HostIoEngine(self.ssd, self.link, self.cpu,
                                   queue_depth=queue_depth)
        #: optional host page cache (§7.1's "system cache" effect);
        #: 0 = disabled — the calibrated Fig. 9 runs measure cold reads
        from repro.host.cache import PageCache
        self.cache = PageCache(cache_pages)
        self._datasets: Dict[str, _Dataset] = {}
        self._next_page = 0
        self._init_tier(cache)

    # ------------------------------------------------------------------
    def _execute_ingest(self, dataset: str, dims: Sequence[int],
                        element_size: int,
                        data: Optional[np.ndarray] = None,
                        start_time: float = 0.0,
                        layout: str = "row") -> SystemOpResult:
        if dataset in self._datasets:
            raise ValueError(f"dataset {dataset!r} already ingested")
        if layout not in ("row", "col"):
            raise ValueError("layout must be 'row' or 'col'")
        dims = tuple(int(d) for d in dims)
        total_bytes = element_size
        for extent in dims:
            total_bytes *= extent
        pages = -(-total_bytes // self.page_size)
        record = _Dataset(start_page=self._next_page, dims=dims,
                          element_size=element_size, layout=layout)
        self._next_page += pages
        if self._next_page > self.ssd.logical_pages:
            raise ValueError("dataset exceeds device logical capacity")
        self._datasets[dataset] = record

        raw = None
        if data is not None and self.store_data:
            array = np.asarray(data)
            if layout == "col" and len(dims) == 2:
                array = array.T
            raw = np.ascontiguousarray(array).view(np.uint8).ravel()
        requests = self._chunked_requests(record.start_page, pages, raw)
        result = self.engine.run_writes(requests, start_time)
        return SystemOpResult(start_time=start_time, end_time=result.end_time,
                              useful_bytes=total_bytes,
                              fetched_bytes=result.fetched_bytes,
                              requests=len(requests), stats=result.stats)

    # ------------------------------------------------------------------
    def _execute_read(self, dataset: str, origin: Sequence[int],
                      extents: Sequence[int], start_time: float = 0.0,
                      with_data: bool = False,
                      dtype: Optional[np.dtype] = None) -> SystemOpResult:
        record = self._dataset(dataset)
        l_origin, l_extents = record.to_layout(origin, extents)
        runs = row_runs(record.layout_dims, l_origin, l_extents)
        elem = record.element_size
        requests: List[IoRequest] = []
        spans: List[Tuple[int, int]] = []  # (byte_start, byte_len) per request
        for linear, length in runs:
            byte_start = linear * elem
            byte_len = length * elem
            if byte_len > self.max_request_bytes:
                # Contiguous coalesced range: split into saturating
                # requests, DMA-placed directly (no marshalling copy).
                offset = 0
                while offset < byte_len:
                    chunk = min(self.max_request_bytes, byte_len - offset)
                    requests.append(self._read_request(
                        record, byte_start + offset, chunk,
                        placement_chunk=None))
                    spans.append((byte_start + offset, chunk))
                    offset += chunk
            else:
                # One request per run; the host CPU must place the run
                # into its position in the tile buffer (marshalling).
                requests.append(self._read_request(
                    record, byte_start, byte_len, placement_chunk=0))
                spans.append((byte_start, byte_len))
        # DRAM tier: whole-request hits never reach the engine — one
        # contiguous host copy out of the tier per resident run
        tier = self.tier
        tier_end = start_time
        if tier is not None:
            if with_data and self.store_data:
                raise NotImplementedError(
                    "functional reads with the DRAM tier enabled are not "
                    "supported on the linear systems; use cache=None for "
                    "data verification")
            remaining = []
            for request in requests:
                key = ("lpn", request.lpns[0], request.lpns[-1])
                if tier.lookup(key) is not None:
                    tier_end = max(tier_end, self.cpu.copy(
                        request.useful_bytes, start_time, 0,
                        label="cache_copy"))
                    continue
                remaining.append(request)
            requests = remaining
        # host page cache: hits skip the device, costing one host copy
        cached_bytes = 0
        if self.cache.capacity:
            if with_data and self.store_data:
                raise NotImplementedError(
                    "functional reads with the page cache enabled are not "
                    "supported; use cache_pages=0 for data verification")
            remaining: List[IoRequest] = []
            for request in requests:
                outcome = self.cache.access(request.lpns)
                if not outcome.misses:
                    cached_bytes += request.useful_bytes
                    continue
                remaining.append(IoRequest(
                    lpns=list(outcome.misses),
                    useful_bytes=request.useful_bytes,
                    placement_chunk=request.placement_chunk))
            requests = remaining
        read_start = start_time
        if tier is not None:
            # coherence: buffered dirty runs overlapping the misses must
            # reach flash before the device serves them
            for request in requests:
                read_start = self._flush_overlapping_lpns(
                    request.lpns[0], request.lpns[-1], read_start)
        run_result = self.engine.run_reads(requests, start_time
                                           if tier is None else read_start,
                                           with_data=with_data and self.store_data)
        if cached_bytes:
            copy_end = self.cpu.copy(cached_bytes, start_time, 0)
            run_result.end_time = max(run_result.end_time, copy_end)
        if tier is not None:
            end = run_result.end_time
            for request in requests:
                end = tier.insert(
                    ("lpn", request.lpns[0], request.lpns[-1]),
                    len(request.lpns) * self.page_size, end,
                    payload=request)
            run_result.end_time = max(run_result.end_time, end, tier_end)
        data = None
        if with_data and self.store_data:
            data = self._assemble(record, l_extents, spans, run_result.data)
            if record.layout == "col" and len(record.dims) == 2:
                data = np.ascontiguousarray(
                    data.reshape(l_extents[0], l_extents[1], elem)
                    .swapaxes(0, 1))
            else:
                data = data.reshape(tuple(l_extents) + (elem,))
            if dtype is not None:
                data = data.reshape(-1).view(dtype).reshape(tuple(extents))
        useful = elem
        for extent in extents:
            useful *= extent
        return SystemOpResult(start_time=start_time,
                              end_time=run_result.end_time,
                              useful_bytes=useful,
                              fetched_bytes=run_result.fetched_bytes,
                              requests=len(requests), data=data,
                              stats=run_result.stats)

    # ------------------------------------------------------------------
    def _execute_write(self, dataset: str, origin: Sequence[int],
                       extents: Sequence[int],
                       data: Optional[np.ndarray] = None,
                       start_time: float = 0.0) -> SystemOpResult:
        record = self._dataset(dataset)
        l_origin, l_extents = record.to_layout(origin, extents)
        runs = row_runs(record.layout_dims, l_origin, l_extents)
        elem = record.element_size
        raw = None
        if data is not None and self.store_data:
            array = np.asarray(data)
            if record.layout == "col" and len(record.dims) == 2:
                array = array.T
            raw = np.ascontiguousarray(array).view(np.uint8).ravel()
        requests: List[IoRequest] = []
        consumed = 0
        for linear, length in runs:
            byte_start = linear * elem
            byte_len = length * elem
            if byte_start % self.page_size or byte_len % self.page_size:
                if raw is not None:
                    raise NotImplementedError(
                        "functional baseline writes must be page aligned; "
                        "use the NDS systems for arbitrary functional tiles")
            first = (record.start_page
                     + byte_start // self.page_size)
            count = max(1, -(-byte_len // self.page_size))
            payload = None
            if raw is not None:
                chunk = raw[consumed:consumed + byte_len]
                payload = [chunk[i * self.page_size:(i + 1) * self.page_size]
                           for i in range(count)]
            consumed += byte_len
            gather_chunk = 0 if byte_len <= self.max_request_bytes else None
            requests.append(IoRequest(
                lpns=list(range(first, first + count)),
                useful_bytes=byte_len, placement_chunk=gather_chunk,
                payload=payload))
        if self.cache.capacity:
            for request in requests:
                self.cache.invalidate(request.lpns)
        tier = self.tier
        if tier is not None and tier.config.write_back:
            # write-back: the runs never reach the engine now — one host
            # copy into the DRAM tier each; the device write is paid at
            # eviction, dirty-bound or fence
            end = start_time
            for request in requests:
                done = self.cpu.copy(request.useful_bytes, start_time, 0,
                                     label="cache_copy")
                done = self._flush_overlapping_lpns(
                    request.lpns[0], request.lpns[-1], done,
                    invalidate=True)
                end = max(end, tier.insert(
                    ("lpn", request.lpns[0], request.lpns[-1]),
                    len(request.lpns) * self.page_size, done,
                    payload=request, dirty=True))
            useful = elem
            for extent in extents:
                useful *= extent
            return SystemOpResult(start_time=start_time, end_time=end,
                                  useful_bytes=useful, fetched_bytes=0,
                                  requests=len(requests))
        if tier is not None:
            # write-through: cached copies of the overwritten runs are
            # now stale
            for request in requests:
                self._invalidate_overlapping_lpns(request.lpns[0],
                                                  request.lpns[-1])
        run_result = self.engine.run_writes(requests, start_time)
        useful = elem
        for extent in extents:
            useful *= extent
        return SystemOpResult(start_time=start_time,
                              end_time=run_result.end_time,
                              useful_bytes=useful,
                              fetched_bytes=run_result.fetched_bytes,
                              requests=len(requests), stats=run_result.stats)

    # ------------------------------------------------------------------
    def reset_time(self) -> None:
        if self.cluster is not None:
            self.cluster.reset_time()
            self._reset_runtime()
            return
        self.engine.reset_time()
        self._reset_runtime()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dataset(self, dataset: str) -> _Dataset:
        record = self._datasets.get(dataset)
        if record is None:
            raise KeyError(f"unknown dataset {dataset!r}")
        return record

    def _read_request(self, record: _Dataset, byte_start: int,
                      byte_len: int,
                      placement_chunk: Optional[int]) -> IoRequest:
        first = record.start_page + byte_start // self.page_size
        last = record.start_page + (byte_start + byte_len - 1) // self.page_size
        return IoRequest(lpns=list(range(first, last + 1)),
                         useful_bytes=byte_len,
                         placement_chunk=placement_chunk)

    def _chunked_requests(self, start_page: int, pages: int,
                          raw: Optional[np.ndarray]) -> List[IoRequest]:
        pages_per_request = max(1, self.max_request_bytes // self.page_size)
        requests = []
        for first in range(0, pages, pages_per_request):
            count = min(pages_per_request, pages - first)
            payload = None
            if raw is not None:
                payload = []
                for page in range(first, first + count):
                    lo = page * self.page_size
                    payload.append(raw[lo:lo + self.page_size])
            requests.append(IoRequest(
                lpns=list(range(start_page + first, start_page + first + count)),
                useful_bytes=count * self.page_size,
                placement_chunk=None, payload=payload))
        return requests

    def _assemble(self, record: _Dataset, l_extents: Sequence[int],
                  spans: List[Tuple[int, int]],
                  pages_per_request: List[Optional[List[np.ndarray]]],
                  ) -> np.ndarray:
        elem = record.element_size
        total = elem
        for extent in l_extents:
            total *= extent
        out = np.zeros(total, dtype=np.uint8)
        cursor = 0
        for (byte_start, byte_len), pages in zip(spans, pages_per_request):
            if pages is None:
                cursor += byte_len
                continue
            blob = np.concatenate(pages)
            inner = byte_start % self.page_size
            out[cursor:cursor + byte_len] = blob[inner:inner + byte_len]
            cursor += byte_len
        return out
