"""Block-cipher support (§5.3.3).

Modern datacenter SSD controllers ship AES engines that permute
fixed-size *sections* (256 bits) in place, so ciphertext is exactly as
large as plaintext. NDS composes with such engines untouched because it
never alters dataset content at sub-section granularity: the only
constraint is that a building block's innermost dimension spans at
least one cipher section, which §5.3.3 argues is "near zero" likely to
be violated (a section is 8 × 4-byte elements; pages are >= 4 KB).

The model provides (a) the compatibility check and (b) a functional,
size-preserving keyed section permutation — a stand-in for AES-XTS with
the algebraic properties NDS relies on (bijective, section-aligned,
length-preserving) — plus an engine-throughput cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.space import Space

__all__ = ["SECTION_BYTES", "BlockCipherModel", "check_space_compatibility"]

#: AES section size: 256 bits (§5.3.3)
SECTION_BYTES = 32


def check_space_compatibility(space: Space) -> bool:
    """§5.3.3: encryption composes with NDS when each block's innermost
    dimension is at least one cipher section wide."""
    innermost_axis = max(
        (axis for axis, extent in enumerate(space.bb) if extent > 1),
        default=space.rank - 1,
    )
    innermost_bytes = space.bb[innermost_axis] * space.element_size
    return innermost_bytes >= SECTION_BYTES


@dataclass(frozen=True)
class BlockCipherModel:
    """A keyed, size-preserving section permutation with a throughput
    model calibrated to controller AES engines (multi-GB/s line rate)."""

    key: int = 0xC0FFEE
    throughput: float = 8e9       # bytes/second through the engine
    per_section_overhead: float = 2e-9

    def _keystream(self, num_bytes: int, tweak: int) -> np.ndarray:
        sections = -(-num_bytes // SECTION_BYTES)
        rng = np.random.default_rng((self.key ^ tweak) & 0xFFFFFFFF)
        stream = rng.integers(0, 256, sections * SECTION_BYTES,
                              dtype=np.uint8, endpoint=False)
        return stream[:num_bytes]

    def encrypt(self, plaintext: np.ndarray, tweak: int = 0) -> np.ndarray:
        """Size-preserving encryption (pads nothing, drops nothing)."""
        raw = np.asarray(plaintext, dtype=np.uint8).ravel()
        if raw.size % SECTION_BYTES != 0:
            raise ValueError(
                f"ciphertext unit must be a multiple of {SECTION_BYTES} B")
        return raw ^ self._keystream(raw.size, tweak)

    def decrypt(self, ciphertext: np.ndarray, tweak: int = 0) -> np.ndarray:
        return self.encrypt(ciphertext, tweak)  # involution

    def crypt_time(self, num_bytes: int) -> float:
        """Engine occupancy to push ``num_bytes`` through."""
        sections = -(-num_bytes // SECTION_BYTES)
        return (sections * self.per_section_overhead
                + num_bytes / self.throughput)
