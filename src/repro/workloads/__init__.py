"""The Table 1 workloads, their generators, and the pipelined runner."""

from typing import Callable, Dict, List

from repro.workloads.base import SCALE_NOTE, TileFetch, Workload, WorkloadDataset
from repro.workloads.bfs import BfsWorkload
from repro.workloads.conv2d import Conv2dWorkload
from repro.workloads.embedding import EmbeddingWorkload
from repro.workloads.gemm import GemmWorkload
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.knn import KnnWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.runner import (CoRunResult, StreamRunResult,
                                    WorkloadRunResult, co_run_workloads,
                                    ingest_datasets, measure_io_times,
                                    run_workload, speedup)
from repro.workloads.sssp import SsspWorkload
from repro.workloads.trace import (AccessTrace, TraceEvent, TracingSystem,
                                   replay_trace)
from repro.workloads.tc import TcWorkload
from repro.workloads.ttv import TtvWorkload

#: Table 1 order; factories produce default-scaled instances.
WORKLOAD_FACTORIES: Dict[str, Callable[[], Workload]] = {
    "BFS": BfsWorkload,
    "SSSP": SsspWorkload,
    "GEMM": GemmWorkload,
    "Hotspot": HotspotWorkload,
    "KMeans": KMeansWorkload,
    "KNN": KnnWorkload,
    "PageRank": PageRankWorkload,
    "Conv2D": Conv2dWorkload,
    "TTV": TtvWorkload,
    "TC": TcWorkload,
}


def all_workloads() -> List[Workload]:
    """Fresh default-scaled instances of every Table 1 workload."""
    return [factory() for factory in WORKLOAD_FACTORIES.values()]


__all__ = [
    "Workload",
    "WorkloadDataset",
    "TileFetch",
    "SCALE_NOTE",
    "BfsWorkload",
    "SsspWorkload",
    "GemmWorkload",
    "HotspotWorkload",
    "KMeansWorkload",
    "KnnWorkload",
    "PageRankWorkload",
    "Conv2dWorkload",
    "EmbeddingWorkload",
    "TtvWorkload",
    "TcWorkload",
    "WORKLOAD_FACTORIES",
    "all_workloads",
    "run_workload",
    "speedup",
    "ingest_datasets",
    "measure_io_times",
    "WorkloadRunResult",
    "co_run_workloads",
    "CoRunResult",
    "StreamRunResult",
    "AccessTrace",
    "TraceEvent",
    "TracingSystem",
    "replay_trace",
]
