"""Tenant co-run cells in the scale-out sweep (pool-aware co-runs)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.scaleout_sweep import (ScanWorkload, run_co_cell,
                                           scaleout_sweep, sweep_json)
from repro.nvm.profiles import TINY_TEST


def _tenants(count=2):
    return [ScanWorkload(n=64, tile=16, name=f"scan{t}", dataset=f"S{t}")
            for t in range(count)]


def test_scan_tenants_are_distinct():
    a, b = _tenants()
    assert a.name != b.name
    assert a.datasets()[0].name != b.datasets()[0].name
    assert all(f.dataset == "S1" for f in b.tile_plan())


def test_co_cell_reports_per_tenant_and_aggregate():
    cell = run_co_cell("software-nds", 2, profile=TINY_TEST,
                       workloads=_tenants())
    assert cell["tenants"] == 2
    assert sorted(cell["streams"]) == ["scan0", "scan1"]
    per_tenant = sum(s["tiles"] for s in cell["streams"].values())
    assert per_tenant == 2 * len(_tenants()[0].tile_plan())
    assert cell["goodput_bytes_per_second"] > 0
    assert cell["device_subops"], "pooled run must report device sub-ops"
    # every pool member served sub-ops (declustered tenants)
    assert all(v > 0 for v in cell["device_subops"].values())


def test_co_cell_single_device_has_no_device_report():
    cell = run_co_cell("software-nds", 1, profile=TINY_TEST,
                       workloads=_tenants())
    assert "device_subops" not in cell


def test_pool_absorbs_the_co_tenant():
    one = run_co_cell("software-nds", 1, profile=TINY_TEST,
                      workloads=_tenants())
    four = run_co_cell("software-nds", 4, profile=TINY_TEST,
                       workloads=_tenants())
    assert four["goodput_bytes_per_second"] > \
        one["goodput_bytes_per_second"]
    assert four["makespan_seconds"] < one["makespan_seconds"]


def test_co_run_sweep_deterministic_and_speedups():
    # default-size tenant scans need CONSUMER_SSD capacity
    kwargs = dict(device_counts=(1, 2), systems=("software-nds",),
                  modes=("fixed-per-device",), tenants=2)
    sweep = scaleout_sweep(**kwargs)
    assert sweep["tenants"] == 2
    one, two = sweep["cells"]
    assert one["tenants"] == 2 and "streams" in one
    assert one["speedup_vs_single"] == pytest.approx(1.0)
    assert two["speedup_vs_single"] > 1.0
    assert sweep_json(sweep) == sweep_json(scaleout_sweep(**kwargs))


def test_validation():
    with pytest.raises(ValueError):
        run_co_cell("software-nds", 1, tenants=1)
    with pytest.raises(ValueError):
        run_co_cell("no-such-system", 1)


def test_co_cell_json_stable():
    a = run_co_cell("software-nds", 2, profile=TINY_TEST,
                    workloads=_tenants())
    b = run_co_cell("software-nds", 2, profile=TINY_TEST,
                    workloads=_tenants())
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
