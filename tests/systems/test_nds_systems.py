"""Tests for the software and hardware NDS architectures (Fig. 7(b,c))."""

import numpy as np
import pytest

from repro.nvm import TINY_TEST
from repro.systems import HardwareNdsSystem, SoftwareNdsSystem


@pytest.fixture(params=[SoftwareNdsSystem, HardwareNdsSystem],
                ids=["software", "hardware"])
def nds_system(request):
    return request.param(TINY_TEST, store_data=True)


class TestFunctional:
    def test_roundtrip_tile(self, nds_system, rng):
        data = rng.integers(0, 2**31, (64, 48)).astype(np.int32)
        nds_system.ingest("m", (64, 48), 4, data=data)
        result = nds_system.read_tile("m", (3, 5), (20, 30),
                                      with_data=True, dtype=np.int32)
        assert np.array_equal(result.data, data[3:23, 5:35])

    def test_write_tile_arbitrary_alignment(self, nds_system, rng):
        """Unlike the baseline, NDS accepts functional writes at any
        element alignment (the STL merges into building blocks)."""
        data = rng.integers(0, 2**31, (32, 32)).astype(np.int32)
        nds_system.ingest("m", (32, 32), 4, data=data)
        patch = rng.integers(0, 2**31, (5, 7)).astype(np.int32)
        nds_system.write_tile("m", (11, 13), (5, 7), data=patch)
        result = nds_system.read_tile("m", (0, 0), (32, 32),
                                      with_data=True, dtype=np.int32)
        expected = data.copy()
        expected[11:16, 13:20] = patch
        assert np.array_equal(result.data, expected)

    def test_3d_dataset_roundtrip(self, nds_system, rng):
        tensor = rng.integers(0, 2**31, (16, 16, 8)).astype(np.int32)
        nds_system.ingest("t", (16, 16, 8), 4, data=tensor)
        result = nds_system.read_tile("t", (4, 4, 2), (8, 8, 4),
                                      with_data=True, dtype=np.int32)
        assert np.array_equal(result.data, tensor[4:12, 4:12, 2:6])

    def test_1d_dataset_roundtrip(self, nds_system, rng):
        data = rng.integers(0, 2**31, 2048).astype(np.int32)
        nds_system.ingest("v", (2048,), 4, data=data)
        result = nds_system.read_tile("v", (512,), (1024,),
                                      with_data=True, dtype=np.int32)
        assert np.array_equal(result.data, data[512:1536])

    def test_duplicate_ingest_rejected(self, nds_system):
        nds_system.ingest("m", (16, 16), 4)
        with pytest.raises(ValueError):
            nds_system.ingest("m", (16, 16), 4)

    def test_unknown_dataset(self, nds_system):
        with pytest.raises(KeyError):
            nds_system.read_tile("nope", (0, 0), (1, 1))


class TestStructuralBehaviour:
    def test_hardware_issues_single_command(self, rng):
        system = HardwareNdsSystem(TINY_TEST, store_data=False)
        system.ingest("m", (64, 64), 4)
        system.reset_time()
        result = system.read_tile("m", (0, 0), (32, 32))
        assert result.requests == 1

    def test_software_issues_one_command_per_block(self):
        system = SoftwareNdsSystem(TINY_TEST, store_data=False)
        system.ingest("m", (64, 64), 4)
        system.reset_time()
        result = system.read_tile("m", (0, 0), (32, 32))
        space = system.stl.get_space(1)
        blocks = (32 // space.bb[0]) * (32 // space.bb[1])
        assert result.requests == blocks

    def test_partial_tile_fetches_fewer_bytes_than_blocks(self, nds_system):
        nds_system.ingest("m", (64, 64), 4)
        nds_system.reset_time()
        space = nds_system.stl.get_space(1)
        full_block = nds_system.read_tile("m", (0, 0), space.bb)
        nds_system.reset_time()
        few_rows = nds_system.read_tile("m", (0, 0), (2, space.bb[1]))
        assert few_rows.fetched_bytes < full_block.fetched_bytes

    def test_3d_spaces_get_3d_blocks(self):
        system = HardwareNdsSystem(TINY_TEST, store_data=False)
        system.ingest("t", (16, 16, 16), 4)
        space = system.stl.get_space(1)
        assert space.bb[0] == space.bb[1] == space.bb[2] > 1

    def test_reset_time_preserves_data(self, nds_system, rng):
        data = rng.integers(0, 2**31, (16, 16)).astype(np.int32)
        nds_system.ingest("m", (16, 16), 4, data=data)
        nds_system.reset_time()
        result = nds_system.read_tile("m", (0, 0), (16, 16),
                                      with_data=True, dtype=np.int32)
        assert np.array_equal(result.data, data)
