"""Tests for the host DRAM cache tier (repro.cache)."""
