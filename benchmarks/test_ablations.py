"""Ablations over the design choices DESIGN.md calls out.

These are not paper figures; they isolate the mechanisms behind the
paper's claims:

* building-block size sweep — why the STL sizes blocks by Eq. 1/2;
* channel utilization under striping — [P3] made visible;
* queue-depth sweep — [P2]'s request-size/overhead trade-off;
* 2-D vs 3-D blocks for tensor bricks — §4.1's bank-parallel option;
* software-NDS copy-core scaling — the host-assembly bottleneck.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (MICRO_ELEM, MICRO_N, fresh_baseline, once)
from repro.analysis import format_table
from repro.host.cpu import HostCpu
from repro.nvm import PAPER_PROTOTYPE
from repro.systems import BaselineSystem, HardwareNdsSystem, SoftwareNdsSystem


def test_ablation_block_size_sweep(benchmark):
    """Eq. 2's block (256² for 8 B elements ≈ the paper's pick) should
    be at or near the best submatrix-fetch bandwidth; much smaller
    blocks pay per-block costs, much larger ones fetch waste."""
    def run():
        out = {}
        for side in (64, 128, 256, 512, 1024):
            system = HardwareNdsSystem(PAPER_PROTOTYPE,
                                       bb_override=(side, side))
            system.ingest("m", (MICRO_N, MICRO_N), MICRO_ELEM)
            system.reset_time()
            result = system.read_tile("m", (0, 0), (1024, 1024))
            out[side] = result.effective_bandwidth
        return out

    sweep = once(benchmark, run)
    print()
    print(format_table(["block side", "submatrix fetch GB/s"],
                       [[s, f"{bw / 1e9:.2f}"] for s, bw in sweep.items()],
                       title="Ablation: building-block size"))
    best = max(sweep, key=sweep.get)
    assert best in (128, 256, 512)
    assert sweep[256] > 0.8 * sweep[best]


def test_ablation_channel_utilization(benchmark):
    """[P3]: a sequential stream engages every channel; a submatrix
    fetch from the striped row-store layout concentrates on a subset."""
    def run():
        system = fresh_baseline()
        system.ingest("m", (MICRO_N, MICRO_N), MICRO_ELEM)
        system.reset_time()
        seq = system.read_tile("m", (0, 0), (256, MICRO_N))
        seq_busy = [line.busy_time
                    for line in system.ssd.flash.channel_lines]
        system.reset_time()
        sub = system.read_tile("m", (0, 0), (1024, 1024))
        sub_busy = [line.busy_time
                    for line in system.ssd.flash.channel_lines]
        return seq_busy, sub_busy

    seq_busy, sub_busy = once(benchmark, run)
    seq_active = sum(1 for b in seq_busy if b > 0)
    sub_active = sum(1 for b in sub_busy if b > 0)
    # imbalance: max/mean busy among active channels
    sub_imbalance = max(sub_busy) / (sum(sub_busy) / len(sub_busy))
    print(f"\nsequential: {seq_active}/32 channels active; "
          f"submatrix: {sub_active}/32 active, "
          f"imbalance {sub_imbalance:.1f}x")
    assert seq_active == 32
    # the 1024-wide tile touches only 2 of every row's 8 pages, so the
    # striped layout concentrates traffic (the paper's 50 % example)
    assert sub_active < 32 or sub_imbalance > 1.5


def test_ablation_queue_depth(benchmark):
    """[P2]: deeper queues recover overlap for small-request patterns;
    the effect saturates."""
    def run():
        out = {}
        for depth in (1, 4, 16, 64, 256):
            system = BaselineSystem(PAPER_PROTOTYPE, queue_depth=depth)
            system.ingest("m", (MICRO_N, MICRO_N), MICRO_ELEM)
            system.reset_time()
            result = system.read_tile("m", (0, 0), (1024, 1024))
            out[depth] = result.effective_bandwidth
        return out

    sweep = once(benchmark, run)
    print()
    print(format_table(["queue depth", "submatrix fetch GB/s"],
                       [[d, f"{bw / 1e9:.2f}"] for d, bw in sweep.items()],
                       title="Ablation: baseline queue depth"))
    values = list(sweep.values())
    assert values == sorted(values)
    assert sweep[64] > 4 * sweep[1]
    assert sweep[256] < 1.5 * sweep[64]  # saturating


def test_ablation_2d_vs_3d_blocks(benchmark):
    """§4.1: for depth-crossing tensor bricks, 3-D cube blocks (banks as
    the third dimension) dominate 2-D blocks laid on the wrong plane."""
    def run():
        dims = (128, 128, 512)
        brick = ((0, 0, 0), (32, 32, 128))
        out = {}
        for label, override, use_3d in (("2d-blocks", None, False),
                                        ("3d-blocks", None, True)):
            system = HardwareNdsSystem(PAPER_PROTOTYPE)
            space = system.stl.create_space(dims, 4, bb_override=override,
                                            use_3d_blocks=use_3d)
            system._spaces["t"] = space.space_id
            system.write_tile("t", (0, 0, 0), dims)
            system.reset_time()
            result = system.read_tile("t", *brick)
            out[label] = (result.effective_bandwidth, result.fetched_bytes,
                          result.useful_bytes)
        return out

    sweep = once(benchmark, run)
    rows = [[k, f"{bw / 1e9:.2f}", f"{fetched / useful:.2f}x"]
            for k, (bw, fetched, useful) in sweep.items()]
    print()
    print(format_table(["layout", "brick fetch GB/s", "fetch amplification"],
                       rows, title="Ablation: 2-D vs 3-D building blocks"))
    assert sweep["3d-blocks"][0] > sweep["2d-blocks"][0]


def test_ablation_device_profiles(benchmark):
    """[C1]: devices differ, applications shouldn't care. The same
    column-crossing fetch wins on every profile without any
    application-side layout change — the block shape adapts per device."""
    from repro.nvm import CONSUMER_SSD, PCM_PROTOTYPE

    def run():
        out = {}
        for profile in (PAPER_PROTOTYPE, CONSUMER_SSD, PCM_PROTOTYPE):
            small = profile.scaled_capacity(1 / 8)
            nds = HardwareNdsSystem(small)
            base = BaselineSystem(small)
            for system in (nds, base):
                system.ingest("m", (2048, 2048), 4)
                system.reset_time()
            nds_bw = nds.read_tile("m", (0, 0), (2048, 256)
                                   ).effective_bandwidth
            base_bw = base.read_tile("m", (0, 0), (2048, 256)
                                     ).effective_bandwidth
            block = nds.stl.get_space(1).bb
            out[profile.name] = (block, base_bw, nds_bw)
        return out

    sweep = once(benchmark, run)
    rows = [[name, "x".join(map(str, block)),
             f"{base / 1e9:.2f}", f"{nds / 1e9:.2f}",
             f"{nds / base:.1f}x"]
            for name, (block, base, nds) in sweep.items()]
    print()
    print(format_table(
        ["device", "derived block", "baseline GB/s", "hardware NDS GB/s",
         "gain"], rows, title="Ablation: device profiles (column fetch)"))
    blocks = {block for block, _b, _n in sweep.values()}
    assert len(blocks) >= 2  # block shapes adapt per device
    for name, (_block, base_bw, nds_bw) in sweep.items():
        assert nds_bw > base_bw, name


def test_ablation_controller_queue_capacity(benchmark):
    """§5.3.2: the controller's pipeline elements exchange work through
    message-queue pairs. Tiny queues backpressure the fast front-end
    stages behind the flash; a few slots recover full throughput."""
    from repro.sim.queues import bounded_pipeline

    def run():
        # per-block stage times through the controller pipeline for a
        # 64-block tile: translate, flash read, assemble, link share
        blocks = 64
        stage_times = [[4.3e-6, 80e-6, 20e-6, 55e-6]] * blocks
        out = {}
        for capacity in (1, 2, 4, 8):
            result = bounded_pipeline(stage_times,
                                      [capacity, capacity, capacity])
            out[capacity] = result.total_time
        out["unbounded"] = bounded_pipeline(stage_times).total_time
        return out

    sweep = once(benchmark, run)
    print()
    print(format_table(["queue slots", "64-block tile time (ms)"],
                       [[k, f"{v * 1e3:.2f}"] for k, v in sweep.items()],
                       title="Ablation: controller message-queue capacity"))
    values = [sweep[k] for k in (1, 2, 4, 8)]
    assert values == sorted(values, reverse=True)  # deeper is never slower
    assert sweep[8] == pytest.approx(sweep["unbounded"], rel=0.05)


def test_ablation_software_copy_cores(benchmark):
    """The software NDS is host-assembly-bound; more marshalling cores
    push it toward the hardware NDS (at real CPU cost — paper §7.2:
    'software NDS increases the CPU workload')."""
    def run():
        out = {}
        for cores in (1, 2, 4):
            system = SoftwareNdsSystem(PAPER_PROTOTYPE,
                                       bb_override=(256, 256),
                                       cpu=HostCpu(copy_cores=cores))
            system.ingest("m", (MICRO_N, MICRO_N), MICRO_ELEM)
            system.reset_time()
            result = system.read_tile("m", (0, 0), (1024, MICRO_N))
            out[cores] = result.effective_bandwidth
        return out

    sweep = once(benchmark, run)
    print()
    print(format_table(["copy cores", "row fetch GB/s"],
                       [[c, f"{bw / 1e9:.2f}"] for c, bw in sweep.items()],
                       title="Ablation: software NDS marshalling cores"))
    assert sweep[2] > sweep[1]
    assert sweep[4] >= sweep[2]


def test_ablation_page_cache(benchmark):
    """§7.1's cache note: with a host page cache, repeated adjacent
    column fetches against the row-store baseline are served from
    memory. The first pass is as slow as ever — caching does not fix the
    cold-fetch problem NDS solves."""
    def run():
        system = BaselineSystem(PAPER_PROTOTYPE, cache_pages=2**20)
        system.ingest("m", (MICRO_N, MICRO_N), MICRO_ELEM)
        system.reset_time()
        cold = system.read_tile("m", (0, 0), (MICRO_N, 256))
        system.reset_time()
        warm = system.read_tile("m", (0, 256), (MICRO_N, 256))
        return cold.elapsed, warm.elapsed, system.cache.hit_ratio

    cold, warm, hit_ratio = once(benchmark, run)
    print(f"\ncold column fetch {cold * 1e3:.2f} ms, adjacent warm fetch "
          f"{warm * 1e3:.2f} ms (cache hit ratio {hit_ratio:.0%})")
    assert warm < cold / 2
    assert hit_ratio > 0.3


def test_ablation_gc_policy(benchmark):
    """GC victim policy under random-overwrite churn: greedy moves the
    least live data; cost-benefit trades some copying for age-aware
    wear; FIFO copies the most."""
    import numpy as np

    from repro.ftl import BaselineSSD
    from repro.nvm import TINY_TEST

    def run():
        out = {}
        for policy in ("greedy", "cost-benefit", "fifo"):
            ssd = BaselineSSD(TINY_TEST, store_data=False)
            ssd.gc.policy = policy
            stride = (TINY_TEST.geometry.channels
                      * TINY_TEST.geometry.banks_per_channel)
            rng = np.random.default_rng(42)
            for round_id in range(400):
                lpn = int(rng.integers(0, 6)) * stride
                ssd.write_lpns([lpn], float(round_id))
            out[policy] = (ssd.gc.total_relocated, ssd.gc.total_erased)
        return out

    sweep = once(benchmark, run)
    print()
    print(format_table(
        ["policy", "pages relocated", "blocks erased"],
        [[k, str(v[0]), str(v[1])] for k, v in sweep.items()],
        title="Ablation: GC victim policy under churn"))
    assert sweep["greedy"][0] <= sweep["fifo"][0]
