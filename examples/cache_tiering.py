#!/usr/bin/env python3
"""Host DRAM cache/tiering in front of the device path.

A DRAM tier (``cache=CacheConfig(...)``) absorbs repeated building-block
and tile reads before they reach flash. Three deterministic acts:

1. **Policies on a zipfian tile loop** — the same skewed tile trace
   replayed against LRU, CLOCK and admission-filtered eviction on a
   deliberately small tier; the cell reports hits, evictions and the
   per-policy end-to-end makespan. The admission filter keeps one-touch
   tiles out, so the hot set survives the scan.
2. **Write-back vs write-through** — the optimizer-style read-modify-
   write loop, once with each durability mode, plus the explicit
   ``flush_cache`` fence that makes every buffered region durable. The
   deferred device writes show up in the writeback counter instead of
   the write path.
3. **The knee moves** — the embedding load line from
   ``examples/embedding_serving.py``, cache off vs an 8 MiB LRU tier:
   zipfian row popularity makes the hot rows DRAM-resident, so the
   cached line saturates measurably later and the sweep cells carry
   per-stream hit rates.

The JSON written to ``--out-dir`` is byte-stable (sorted keys, fixed
separators): the CI ``cache-determinism`` job runs this twice and
diffs the output, and asserts the cached knee lands past the uncached
one.

Run:  python examples/cache_tiering.py [--out-dir DIR] [--seed N]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.cache import CACHE_POLICIES, CacheConfig
from repro.analysis.loadline_sweep import format_loadline, loadline_sweep
from repro.nvm.profiles import TINY_TEST
from repro.systems import SoftwareNdsSystem
from repro.workloads.embedding import EmbeddingWorkload

#: dataset geometry for acts 1 and 2: 128×128 float32 matrix, 32×32
#: tiles — 16 tiles of 4 KiB, against a 16 KiB tier (4 tiles resident)
DIMS = (128, 128)
ELEM = 4
TILE = (32, 32)


def zipf_tile_trace(seed: int, length: int = 192):
    """A skewed, deterministic tile trace over the 8×8 tile grid."""
    import numpy as np
    rng = np.random.default_rng(seed)
    grid = DIMS[0] // TILE[0]
    ranks = rng.zipf(1.3, size=length)
    tiles = []
    for rank in ranks:
        index = int(rank - 1) % (grid * grid)
        tiles.append(((index // grid) * TILE[0], (index % grid) * TILE[1]))
    return tiles


def act_policies(seed: int) -> dict:
    """The same trace against each eviction policy."""
    trace = zipf_tile_trace(seed)
    cells = {}
    for policy in CACHE_POLICIES:
        system = SoftwareNdsSystem(TINY_TEST, cache=CacheConfig(
            capacity_bytes=16 * 1024, policy=policy))
        system.ingest("matrix", DIMS, ELEM)
        system.reset_time()
        end = 0.0
        for origin in trace:
            end = max(end, system.read_tile("matrix", origin, TILE).end_time)
        report = system.cache_report()
        cells[policy] = {
            "makespan": end.hex(),
            "hits": report["hits"],
            "misses": report["misses"],
            "evictions": report["evictions"],
            "rejected": report["rejected"],
            "hit_rate": report["hit_rate"],
        }
    return cells


def act_durability(seed: int) -> dict:
    """Read-modify-write loop under each durability mode."""
    trace = zipf_tile_trace(seed, length=64)
    cells = {}
    for mode in ("write_through", "write_back"):
        system = SoftwareNdsSystem(TINY_TEST, cache=CacheConfig(
            capacity_bytes=64 * 1024, write_back=(mode == "write_back"),
            dirty_max=8))
        system.ingest("matrix", DIMS, ELEM)
        system.reset_time()
        end = 0.0
        for origin in trace:
            end = max(end, system.read_tile("matrix", origin, TILE).end_time)
            end = max(end, system.write_tile("matrix", origin, TILE).end_time)
        fence = system.flush_cache(end)
        report = system.cache_report()
        cells[mode] = {
            "makespan": end.hex(),
            "fence_end": fence.hex(),
            "writebacks": report["writebacks"],
            "invalidations": report["invalidations"],
            "hit_rate": report["hit_rate"],
        }
    return cells


def act_loadline(seed: int) -> dict:
    """Embedding load line, cache off vs an 8 MiB LRU tier."""
    workload = EmbeddingWorkload(num_embeddings=256, embedding_dim=16,
                                 num_tables=1, batch_size=2,
                                 pooling_factor=2, num_batches=4,
                                 alpha=1.05, weights_precision=4,
                                 update_fraction=0.25)
    systems = ("software-nds",)
    uncached = loadline_sweep(systems=systems, workload=workload, seed=seed,
                              attribute_layers=False)
    cached = loadline_sweep(systems=systems, workload=workload, seed=seed,
                            attribute_layers=False,
                            cache=CacheConfig(capacity_bytes=8 * 2**20))
    return {"uncached": uncached, "cached": cached}


def knee_rate(sweep: dict) -> float:
    """Goodput at the saturating point (last cell of the ramp)."""
    best = 0.0
    for cell in sweep["cells"]:
        best = max(best, cell["goodput_rps"])
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument("--seed", type=int, default=97)
    args = parser.parse_args()

    print("== act 1: eviction policies on a zipfian tile loop ==")
    policies = act_policies(args.seed)
    for policy in CACHE_POLICIES:
        cell = policies[policy]
        print(f"  {policy:10s} hit_rate={cell['hit_rate']:.3f} "
              f"evictions={cell['evictions']} rejected={cell['rejected']}")

    print("\n== act 2: write-back vs write-through ==")
    durability = act_durability(args.seed)
    for mode, cell in sorted(durability.items()):
        print(f"  {mode:14s} writebacks={cell['writebacks']} "
              f"hit_rate={cell['hit_rate']:.3f}")

    print("\n== act 3: the embedding knee moves ==")
    lines = act_loadline(args.seed)
    print(format_loadline(lines["uncached"]))
    print(format_loadline(lines["cached"]))
    uncached_knee = knee_rate(lines["uncached"])
    cached_knee = knee_rate(lines["cached"])
    print(f"\nsaturation goodput: uncached {uncached_knee:.0f} req/s, "
          f"cached {cached_knee:.0f} req/s")

    payload = {
        "policies": policies,
        "durability": durability,
        "loadline": lines,
        "knees": {"uncached": uncached_knee, "cached": cached_knee},
    }
    args.out_dir.mkdir(parents=True, exist_ok=True)
    out = args.out_dir / "cache_tiering.json"
    out.write_text(json.dumps(payload, sort_keys=True, indent=2,
                              separators=(",", ": ")) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
