"""Property-based tests for the fault subsystem: functional safety
under injected faults, and byte-identical determinism per seed."""

from __future__ import annotations

import json

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultConfig, FaultInjector, FaultPlan
from repro.ftl import BaselineSSD
from repro.nvm import TINY_TEST
from repro.runtime import TraceRecorder
from repro.systems import SoftwareNdsSystem

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

N = 64

#: retry-heavy but never uncorrectable: worst case is
#: rber_base * (1 + 18000/3000) * 2**jitter = 1e-3 * 7 * 4 = 2.8e-2,
#: below the last ladder tier (8e-3 * 5.6 = 4.48e-2)
_SAFE_RETRY = dict(rber_base=1e-3, jitter_log2=2.0)


@SETTINGS
@given(seed=st.integers(0, 2**31 - 1), wear=st.integers(0, 18000))
def test_ssd_readback_survives_gc_wear_and_retries(seed, wear):
    """Overwrite churn (GC + erases) under an aged, retry-heavy error
    model never changes the bytes the host reads back."""
    ssd = BaselineSSD(TINY_TEST, store_data=True)
    ssd.flash.attach_faults(FaultInjector(
        FaultConfig(seed=seed, initial_wear=wear, **_SAFE_RETRY)))
    rng = np.random.default_rng(seed)
    lpns = list(range(48))
    end, latest = 0.0, {}
    for _round in range(4):
        payload = [rng.integers(0, 256, ssd.page_size).astype(np.uint8)
                   for _ in lpns]
        end = ssd.write_lpns(lpns, end, data=payload).end_time
        latest = dict(zip(lpns, payload))
    result = ssd.read_lpns(lpns, end, with_data=True)
    for lpn, got in zip(lpns, result.data):
        assert np.array_equal(latest[lpn], got)


@SETTINGS
@given(seed=st.integers(0, 2**31 - 1),
       channel=st.integers(0, 3), bank=st.integers(0, 1),
       block=st.integers(0, 7))
def test_ssd_readback_survives_grown_bad_block(seed, channel, bank, block):
    """Whatever block the plan marks bad, retirement + relocation keep
    every logical page intact."""
    ssd = BaselineSSD(TINY_TEST, store_data=True)
    ssd.flash.attach_faults(FaultInjector(FaultConfig(
        seed=seed,
        plan=FaultPlan().mark_block_bad(channel, bank, block, at=0.0))))
    rng = np.random.default_rng(seed)
    lpns = list(range(64))
    payload = [rng.integers(0, 256, ssd.page_size).astype(np.uint8)
               for _ in lpns]
    end = ssd.write_lpns(lpns, 0.0, data=payload).end_time
    result = ssd.read_lpns(lpns, end, with_data=True)
    for expected, got in zip(payload, result.data):
        assert np.array_equal(expected, got)


@SETTINGS
@given(seed=st.integers(0, 2**31 - 1), wear=st.integers(0, 18000))
def test_nds_readback_with_parity_and_retries(seed, wear):
    """The NDS stack (STL + parity maintenance) returns exact bytes
    under an aged error model."""
    system = SoftwareNdsSystem(TINY_TEST, store_data=True,
                               faults=FaultConfig(seed=seed,
                                                  initial_wear=wear,
                                                  parity=True,
                                                  **_SAFE_RETRY))
    data = np.random.default_rng(seed).integers(
        0, 256, size=(N, N), dtype=np.uint8).astype(np.uint8)
    system.ingest("d", (N, N), 1, data=data)
    result = system.read_tile("d", (0, 0), (N, N), start_time=0.1,
                              with_data=True)
    assert np.array_equal(result.data.reshape(N, N), data)


def _traced_run(seed: int) -> tuple:
    """One corrupt-reconstruct run; returns its serialized artifacts."""
    trace = TraceRecorder()
    system = SoftwareNdsSystem(
        TINY_TEST, store_data=True,
        faults=FaultConfig(seed=seed, parity=True, rber_base=4e-4,
                           initial_wear=9000,
                           plan=FaultPlan().corrupt_page(0, 0, 0, 0,
                                                         at=0.01)))
    system.set_trace(trace)
    data = np.random.default_rng(seed).integers(
        0, 256, size=(N, N), dtype=np.uint8).astype(np.uint8)
    system.ingest("d", (N, N), 1, data=data)
    system.read_tile("d", (0, 0), (N, N), start_time=0.1, with_data=True,
                     stream="tenant-a")
    return (json.dumps(trace.to_chrome(), sort_keys=True),
            json.dumps(system.flash.faults.counters(), sort_keys=True),
            json.dumps(system.scheduler.stream_fault_report(),
                       sort_keys=True))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**31 - 1))
def test_same_seed_gives_byte_identical_traces(seed):
    """Two runs with the same seed serialize to identical trace JSON,
    fault counters, and per-stream reports — the replay guarantee the
    CI determinism job enforces end-to-end."""
    assert _traced_run(seed) == _traced_run(seed)
