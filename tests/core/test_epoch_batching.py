"""Epoch-batched STL paths must be bit-identical to the scalar loop.

``batch_epochs`` merges consecutive same-kind block accesses of one
region op into single flash submissions, flushing at every GC trigger
and draining before RMW or compressed accesses. The A/B here drives a
deliberately dense device (the 64 KB space churns the 128 KB device)
so GC epochs and RMW delegation both fire inside the trials, then
compares per-block timings, read-back data, full flash line state and
the stats counters against ``batch_epochs = False``.
"""

import random

import numpy as np
import pytest

from repro.core.stl import SpaceTranslationLayer
from repro.nvm.flash import FlashArray
from repro.nvm.geometry import Geometry
from repro.nvm.timing import NvmTiming


def _build(store, batch, seed, elide=False):
    geo = Geometry(channels=4, banks_per_channel=2, blocks_per_bank=4,
                   pages_per_block=8, page_size=512)
    flash = FlashArray(geo, NvmTiming(), store_data=store)
    stl = SpaceTranslationLayer(flash, seed=seed, gc_threshold=0.25,
                                elide_zero_pages=elide and store)
    stl.batch_epochs = batch
    space = stl.create_space((128, 128), 4)
    return stl, flash, space


def _lines_state(flash):
    out = []
    for line in flash.channel_lines:
        out.append((line.free_at.hex(), line.busy_time.hex(), line.ops))
    for row in flash.bank_lines:
        for line in row:
            out.append((line.free_at.hex(), line.busy_time.hex(),
                        line.ops))
    return out


def _op_sig(res):
    return (res.start_time.hex(), res.end_time.hex(),
            [(b.issue_time.hex(), b.completion_time.hex(), b.pages,
              b.units_allocated, b.rmw_reads, b.gc_time.hex())
             for b in res.blocks])


def _run_trial(seed, store, elide):
    rng = random.Random(seed)
    a, fa, sa = _build(store, True, seed, elide)
    b, fb, sb = _build(store, False, seed, elide)
    t = 0.0
    for step in range(40):
        t += rng.random() * 1e-3
        o = (rng.randrange(96), rng.randrange(96))
        e = (rng.randrange(1, 128 - o[0] + 1),
             rng.randrange(1, 128 - o[1] + 1))
        if rng.random() < 0.6:
            data = None
            if store and rng.random() < 0.8:
                data = np.frombuffer(
                    rng.randbytes(e[0] * e[1] * 4),
                    dtype=np.uint8).reshape(e + (4,)).copy()
                if elide and rng.random() < 0.5:
                    data[...] = 0
            ra = a.write_region(sa.space_id, o, e, data=data, start_time=t)
            rb = b.write_region(sb.space_id, o, e, data=data, start_time=t)
        else:
            ra = a.read_region(sa.space_id, o, e, start_time=t)
            rb = b.read_region(sb.space_id, o, e, start_time=t)
            if store:
                assert (ra.data is None) == (rb.data is None)
                if ra.data is not None:
                    assert np.array_equal(ra.data, rb.data), (seed, step)
        assert _op_sig(ra) == _op_sig(rb), (seed, step)
    assert _lines_state(fa) == _lines_state(fb), seed
    assert dict(a.stats.counters) == dict(b.stats.counters), seed


@pytest.mark.parametrize("store,elide", [(False, False), (True, False),
                                         (True, True)],
                         ids=["timing-only", "store", "store+elide"])
def test_epoch_batching_bit_identical(store, elide):
    for seed in range(8):
        _run_trial(seed + (1000 if store else 0) + (1000 if elide else 0),
                   store, elide)
