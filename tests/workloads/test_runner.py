"""Tests for the pipelined workload runner."""

import pytest

from repro.nvm import TINY_TEST
from repro.systems import BaselineSystem, HardwareNdsSystem, OracleSystem
from repro.workloads import (GemmWorkload, ingest_datasets,
                             measure_io_times, run_workload, speedup)


@pytest.fixture
def small_gemm():
    # sized to fit the tiny test device (128 KiB raw capacity)
    return GemmWorkload(n=64, tile=16, max_tiles=12)


class TestIngest:
    def test_ingest_all_datasets(self, small_gemm):
        system = BaselineSystem(TINY_TEST, store_data=False)
        ingest_datasets(small_gemm, system)
        system.read_tile("A", (0, 0), (16, 16))
        system.read_tile("B", (0, 0), (16, 16))

    def test_oracle_gets_per_shape_copies(self, small_gemm):
        oracle = OracleSystem(TINY_TEST, store_data=False)
        ingest_datasets(small_gemm, oracle)
        oracle.read_tile("A", (16, 0), (16, 16))


class TestMeasurement:
    def test_io_times_per_shape(self, small_gemm):
        system = BaselineSystem(TINY_TEST, store_data=False)
        ingest_datasets(small_gemm, system)
        times = measure_io_times(small_gemm, system,
                                 small_gemm.tile_plan())
        assert set(times) == {("A", (16, 16)), ("B", (16, 16))}
        assert all(t > 0 for t in times.values())

    def test_streaming_time_below_isolated(self, small_gemm):
        """Steady-state streaming must not exceed isolated latency."""
        system = BaselineSystem(TINY_TEST, store_data=False)
        ingest_datasets(small_gemm, system)
        fetch = small_gemm.tile_plan()[0]
        isolated = system.tile_io_time(fetch.dataset, fetch.origin,
                                       fetch.extents)
        times = measure_io_times(small_gemm, system,
                                 small_gemm.tile_plan())
        assert times[fetch.shape_key] <= isolated * 1.001


class TestRun:
    def test_run_produces_consistent_result(self, small_gemm):
        system = BaselineSystem(TINY_TEST, store_data=False)
        result = run_workload(small_gemm, system)
        assert result.tiles == len(small_gemm.tile_plan())
        assert result.total_time > 0
        assert result.total_time >= max(result.io_busy, result.h2d_busy,
                                        result.kernel_busy) * 0.99
        assert result.kernel_idle >= 0

    def test_speedup_of_identical_runs_is_one(self, small_gemm):
        a = run_workload(small_gemm,
                         BaselineSystem(TINY_TEST, store_data=False))
        b = run_workload(small_gemm,
                         BaselineSystem(TINY_TEST, store_data=False))
        assert speedup(a, b) == pytest.approx(1.0, rel=0.01)

    def test_nds_beats_baseline_on_tiled_gemm(self, small_gemm):
        base = run_workload(small_gemm,
                            BaselineSystem(TINY_TEST, store_data=False))
        nds = run_workload(small_gemm,
                           HardwareNdsSystem(TINY_TEST, store_data=False))
        assert speedup(base, nds) > 1.0
