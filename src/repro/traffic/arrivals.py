"""Deterministic arrival processes.

Every process is seeded and generates its arrival timestamps from a
private :class:`random.Random` — two instances constructed with the
same parameters emit byte-identical streams on every platform
(CPython's Mersenne Twister is part of the language spec), which is
what the ``loadtest-determinism`` CI gate diffs.

The three shapes cover the serving stories the load-line experiments
need:

* :class:`PoissonProcess` — memoryless arrivals at a constant mean
  rate, the classic open-loop reference;
* :class:`MmppProcess` — a Markov-modulated Poisson process cycling
  through states with different rates and exponential dwell times:
  bursty traffic with a controllable peak-to-mean ratio;
* :class:`DiurnalProcess` — a non-homogeneous Poisson process whose
  rate follows a sinusoidal day curve, sampled by Lewis–Shedler
  thinning.

``scaled(factor)`` returns the same process shape with every rate
multiplied by ``factor`` (same seed) — the knob the load-line driver
ramps to trace offered load up to saturation.
"""

from __future__ import annotations

import abc
import math
import random
from typing import List

__all__ = ["ArrivalProcess", "PoissonProcess", "MmppProcess",
           "DiurnalProcess"]


class ArrivalProcess(abc.ABC):
    """One seeded source of monotone arrival timestamps."""

    #: seed the private RNG is built from
    seed: int = 0

    @abc.abstractmethod
    def times(self, horizon: float) -> List[float]:
        """All arrival timestamps in ``[0, horizon)``, ascending."""

    @abc.abstractmethod
    def scaled(self, factor: float) -> "ArrivalProcess":
        """The same process with every rate multiplied by ``factor``."""

    @property
    @abc.abstractmethod
    def mean_rate(self) -> float:
        """Long-run mean arrival rate (requests/second)."""


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` requests/second."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be > 0 requests/second")
        self.rate = float(rate)
        self.seed = int(seed)

    def times(self, horizon: float) -> List[float]:
        rng = random.Random(self.seed)
        out: List[float] = []
        t = rng.expovariate(self.rate)
        while t < horizon:
            out.append(t)
            t += rng.expovariate(self.rate)
        return out

    def scaled(self, factor: float) -> "PoissonProcess":
        return PoissonProcess(self.rate * factor, seed=self.seed)

    @property
    def mean_rate(self) -> float:
        return self.rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PoissonProcess(rate={self.rate}, seed={self.seed})"


class MmppProcess(ArrivalProcess):
    """Markov-modulated Poisson process: bursty arrivals.

    The process cycles through ``rates`` (requests/second per state);
    the dwell time in state ``i`` is exponential with mean
    ``dwells[i]`` seconds. Because exponentials are memoryless,
    re-drawing the next-arrival candidate at each state switch is an
    *exact* simulation, not an approximation.

    A two-state ``rates=(λ_low, λ_high)`` with a short high-rate dwell
    is the usual burst model; the peak-to-mean ratio is
    ``max(rates) / mean_rate``.
    """

    def __init__(self, rates, dwells, seed: int = 0) -> None:
        self.rates = tuple(float(r) for r in rates)
        self.dwells = tuple(float(d) for d in dwells)
        if len(self.rates) < 2:
            raise ValueError("MMPP needs at least two states")
        if len(self.rates) != len(self.dwells):
            raise ValueError("rates and dwells must have equal length")
        if any(r < 0 for r in self.rates) or not any(self.rates):
            raise ValueError("state rates must be >= 0 with at least one > 0")
        if any(d <= 0 for d in self.dwells):
            raise ValueError("state dwell times must be > 0 seconds")
        self.seed = int(seed)

    def times(self, horizon: float) -> List[float]:
        rng = random.Random(self.seed)
        out: List[float] = []
        state = 0
        t = 0.0
        switch = rng.expovariate(1.0 / self.dwells[state])
        while t < horizon:
            rate = self.rates[state]
            # a zero-rate state emits nothing until its dwell expires
            step = rng.expovariate(rate) if rate > 0 else float("inf")
            if t + step >= switch:
                t = switch
                state = (state + 1) % len(self.rates)
                switch = t + rng.expovariate(1.0 / self.dwells[state])
                continue
            t += step
            if t < horizon:
                out.append(t)
        return out

    def scaled(self, factor: float) -> "MmppProcess":
        return MmppProcess(tuple(r * factor for r in self.rates),
                           self.dwells, seed=self.seed)

    @property
    def mean_rate(self) -> float:
        total_dwell = sum(self.dwells)
        return sum(r * d for r, d in zip(self.rates, self.dwells)) \
            / total_dwell

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MmppProcess(rates={self.rates}, dwells={self.dwells}, "
                f"seed={self.seed})")


class DiurnalProcess(ArrivalProcess):
    """Sinusoidally modulated Poisson arrivals (a compressed "day").

    Instantaneous rate ``λ(t) = base_rate * (1 + amplitude *
    sin(2πt/period + phase))``, sampled exactly by Lewis–Shedler
    thinning against the peak rate ``base_rate * (1 + amplitude)``.
    ``amplitude`` must stay in ``[0, 1)`` so the rate never goes
    negative.
    """

    def __init__(self, base_rate: float, period: float,
                 amplitude: float = 0.5, phase: float = 0.0,
                 seed: int = 0) -> None:
        if base_rate <= 0:
            raise ValueError("base rate must be > 0 requests/second")
        if period <= 0:
            raise ValueError("period must be > 0 seconds")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must lie in [0, 1)")
        self.base_rate = float(base_rate)
        self.period = float(period)
        self.amplitude = float(amplitude)
        self.phase = float(phase)
        self.seed = int(seed)

    def rate_at(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude
            * math.sin(2.0 * math.pi * t / self.period + self.phase))

    def times(self, horizon: float) -> List[float]:
        rng = random.Random(self.seed)
        peak = self.base_rate * (1.0 + self.amplitude)
        out: List[float] = []
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t >= horizon:
                return out
            if rng.random() * peak <= self.rate_at(t):
                out.append(t)

    def scaled(self, factor: float) -> "DiurnalProcess":
        return DiurnalProcess(self.base_rate * factor, self.period,
                              amplitude=self.amplitude, phase=self.phase,
                              seed=self.seed)

    @property
    def mean_rate(self) -> float:
        return self.base_rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DiurnalProcess(base_rate={self.base_rate}, "
                f"period={self.period}, amplitude={self.amplitude}, "
                f"seed={self.seed})")
