"""Popularity-model gates: zipf frequency shape, scatter, determinism."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.traffic import UniformPopularity, ZipfPopularity


def test_samples_deterministic_per_seed():
    a = ZipfPopularity(10_000, 1.1, seed=9)
    b = ZipfPopularity(10_000, 1.1, seed=9)
    assert [a.sample() for _ in range(200)] == \
        [b.sample() for _ in range(200)]
    c = ZipfPopularity(10_000, 1.1, seed=10)
    assert [ZipfPopularity(10_000, 1.1, seed=9).sample()
            for _ in range(200)] != [c.sample() for _ in range(200)]


def test_samples_stay_in_universe():
    model = ZipfPopularity(97, 1.2, seed=1)
    for _ in range(2000):
        assert 0 <= model.sample() < 97


def test_zipf_frequency_shape():
    """Rank-frequency slope must match the configured exponent.

    With P(k) ∝ k^-s, log(freq(k)) ≈ const - s·log(k). A least-squares
    fit over the first 20 ranks of 200k draws recovers s to ~10 %.
    """
    exponent = 1.2
    model = ZipfPopularity(100_000, exponent, seed=17)
    counts = Counter(model.rank() for _ in range(200_000))
    xs, ys = [], []
    for rank in range(1, 21):
        assert counts[rank] > 0, f"rank {rank} never drawn"
        xs.append(math.log(rank))
        ys.append(math.log(counts[rank]))
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    slope = (sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
             / sum((x - mean_x) ** 2 for x in xs))
    assert -slope == pytest.approx(exponent, rel=0.1)


def test_zipf_head_dominates():
    """With s≈1.1 over a million keys, the top-100 ranks must carry a
    large constant share of all draws (the hot set the placement and
    caching stories rely on)."""
    model = ZipfPopularity(1_000_000, 1.1, seed=23)
    draws = [model.rank() for _ in range(50_000)]
    head = sum(1 for r in draws if r <= 100)
    assert head / len(draws) > 0.45


def test_scatter_is_a_bijection():
    model = ZipfPopularity(1000, 1.1, seed=0, scatter=True)
    keys = {model.key_of_rank(rank) for rank in range(1, 1001)}
    assert keys == set(range(1000))


def test_scatter_spreads_hot_ranks():
    model = ZipfPopularity(100_000, 1.1, seed=0, scatter=True)
    hot = [model.key_of_rank(rank) for rank in range(1, 11)]
    assert len(set(hot)) == 10
    # adjacent ranks land far apart in key space
    gaps = [abs(a - b) for a, b in zip(hot, hot[1:])]
    assert min(gaps) > 1000


def test_scatter_disabled_is_identity():
    model = ZipfPopularity(1000, 1.1, seed=0, scatter=False)
    assert [model.key_of_rank(rank) for rank in range(1, 6)] == \
        [0, 1, 2, 3, 4]


def test_fork_streams_are_independent():
    base = ZipfPopularity(10_000, 1.1, seed=3)
    forked = base.fork(0)
    assert isinstance(forked, ZipfPopularity)
    assert forked.seed != base.seed
    a = [base.sample() for _ in range(100)]
    b = [forked.sample() for _ in range(100)]
    assert a != b
    refork = base.fork(0)
    assert b == [refork.sample() for _ in range(100)]


def test_uniform_is_flat():
    model = UniformPopularity(50, seed=4)
    counts = Counter(model.sample() for _ in range(50_000))
    assert set(counts) == set(range(50))
    assert max(counts.values()) < 2.0 * min(counts.values())


def test_uniform_fork_and_determinism():
    a = UniformPopularity(1000, seed=8)
    b = UniformPopularity(1000, seed=8)
    assert [a.sample() for _ in range(50)] == \
        [b.sample() for _ in range(50)]
    assert b.fork(1).seed != b.seed


def test_validation():
    with pytest.raises(ValueError):
        ZipfPopularity(0, 1.1)
    with pytest.raises(ValueError):
        ZipfPopularity(10, 0.0)
    with pytest.raises(ValueError):
        UniformPopularity(0)
    with pytest.raises(ValueError):
        ZipfPopularity(10, 1.1).key_of_rank(0)
    with pytest.raises(ValueError):
        ZipfPopularity(10, 1.1).key_of_rank(11)


def test_single_key_universe():
    model = ZipfPopularity(1, 1.1, seed=0)
    assert model.sample() == 0
    assert model.key_of_rank(1) == 0
