"""SRE-style SLO policies and multi-window burn-rate alerting.

An :class:`SloPolicy` states the objective the serving stack promises —
"`target_fraction` of requests finish within `latency_target` seconds,
and shed requests count against the promise" — which leaves an *error
budget* of ``1 - target_fraction``. Each monitor window contributes a
``(bad, total)`` pair; the **burn rate** of a span of windows is the
fraction of requests that were bad divided by the budget, i.e. how many
times faster than "exactly on budget" the service is consuming its
allowance (burn 1.0 = on budget, 14.0 = the budget will be gone in
1/14th of the period).

Alerting follows the multi-window, multi-burn-rate recipe from the SRE
workbook: a :class:`BurnRule` fires only when *both* a long window
(noise suppression) and a short window (still-happening check) exceed
the rule's threshold. Rules are evaluated per monitor window, fire
deterministic :class:`AlertEvent` s on the rising edge, and stay silent
while the condition persists — re-arming once the rule stops matching.

Everything here is pure arithmetic over window counts: no wall clock,
no randomness, byte-stable output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["BurnRule", "SloPolicy", "AlertEvent", "DEFAULT_BURN_RULES"]


@dataclass(frozen=True)
class BurnRule:
    """One multi-window burn-rate alert rule.

    ``long_windows`` / ``short_windows`` are rolling spans measured in
    monitor windows ending at the window under evaluation; the rule
    matches when both spans burn at ``threshold`` × budget or faster.
    """

    name: str
    long_windows: int
    short_windows: int
    threshold: float

    def __post_init__(self) -> None:
        if self.long_windows < 1 or self.short_windows < 1:
            raise ValueError("burn-rule windows must be >= 1")
        if self.short_windows > self.long_windows:
            raise ValueError("short window cannot exceed the long window")
        if self.threshold <= 0:
            raise ValueError("burn threshold must be > 0")


#: the classic fast-burn / slow-burn pair, scaled to a 16-window run:
#: "fast" catches an outage eating budget 8× over a 4-window span;
#: "slow" catches a simmering 2× burn over 12 windows.
DEFAULT_BURN_RULES: Tuple[BurnRule, ...] = (
    BurnRule("fast", long_windows=4, short_windows=1, threshold=8.0),
    BurnRule("slow", long_windows=12, short_windows=3, threshold=2.0),
)


@dataclass(frozen=True)
class AlertEvent:
    """One deterministic burn-rate alert firing (rising edge)."""

    rule: str
    #: model time of the firing window's right edge
    time: float
    #: index of the monitor window whose evaluation fired the rule
    window: int
    #: rolling burn rates at the firing window
    burn_long: float
    burn_short: float
    threshold: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "time": self.time,
            "window": self.window,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class SloPolicy:
    """One service-level objective plus its alerting rules.

    ``latency_target`` is the per-request latency bound; a completed
    request slower than the bound is *bad*, and every shed request is
    bad too (the user saw an error, not a slow answer).
    ``target_fraction`` is the promised good fraction; the error budget
    is the remainder.
    """

    latency_target: float
    target_fraction: float = 0.999
    rules: Tuple[BurnRule, ...] = DEFAULT_BURN_RULES
    #: objective label used in reports and alert summaries
    objective: str = "latency"

    def __post_init__(self) -> None:
        if self.latency_target <= 0:
            raise ValueError("latency target must be > 0 seconds")
        if not 0.0 < self.target_fraction < 1.0:
            raise ValueError("target fraction must be in (0, 1)")
        if not self.rules:
            raise ValueError("an SLO policy needs at least one burn rule")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target_fraction

    # ------------------------------------------------------------------
    def burn_rate(self, bad: int, total: int) -> float:
        """Burn-rate multiple of one span of windows (0.0 when idle)."""
        if total <= 0:
            return 0.0
        return (bad / total) / self.error_budget

    def evaluate(self, bad: Sequence[int], total: Sequence[int],
                 window_seconds: float) -> Dict[str, object]:
        """Evaluate every rule over per-window ``(bad, total)`` counts.

        Returns a JSON-ready dict: per-window burn rates, per-rule
        rolling burns, and the rising-edge :class:`AlertEvent` list in
        time order (ties broken by rule order).
        """
        if len(bad) != len(total):
            raise ValueError("bad/total series lengths differ")
        count = len(bad)
        burn = [self.burn_rate(bad[i], total[i]) for i in range(count)]

        def rolling(span: int, end: int) -> float:
            lo = max(0, end - span + 1)
            return self.burn_rate(sum(bad[lo:end + 1]),
                                  sum(total[lo:end + 1]))

        rules_out: Dict[str, object] = {}
        alerts: List[AlertEvent] = []
        for rule in self.rules:
            longs = [rolling(rule.long_windows, i) for i in range(count)]
            shorts = [rolling(rule.short_windows, i) for i in range(count)]
            firing = [longs[i] >= rule.threshold
                      and shorts[i] >= rule.threshold for i in range(count)]
            for i in range(count):
                if firing[i] and (i == 0 or not firing[i - 1]):
                    alerts.append(AlertEvent(
                        rule=rule.name, time=(i + 1) * window_seconds,
                        window=i, burn_long=longs[i], burn_short=shorts[i],
                        threshold=rule.threshold))
            rules_out[rule.name] = {
                "long_windows": rule.long_windows,
                "short_windows": rule.short_windows,
                "threshold": rule.threshold,
                "burn_long": longs,
                "burn_short": shorts,
                "firing": firing,
            }
        alerts.sort(key=lambda a: (a.window, a.rule))
        return {
            "objective": self.objective,
            "latency_target": self.latency_target,
            "target_fraction": self.target_fraction,
            "error_budget": self.error_budget,
            "bad": list(bad),
            "total": list(total),
            "burn": burn,
            "rules": rules_out,
            "alerts": [alert.to_dict() for alert in alerts],
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "objective": self.objective,
            "latency_target": self.latency_target,
            "target_fraction": self.target_fraction,
            "rules": [{"name": r.name, "long_windows": r.long_windows,
                       "short_windows": r.short_windows,
                       "threshold": r.threshold} for r in self.rules],
        }
