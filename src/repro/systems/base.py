"""Common interface of the end-to-end storage systems (paper Fig. 7).

A *system* bundles a modelled device, the interconnect and the host
cost model, and exposes dataset-level operations the workloads use:

* ``ingest`` — store an N-D dataset;
* ``read_tile`` — fetch an arbitrary axis-aligned tile into host memory
  *in the layout the compute kernel wants*, paying whatever marshalling
  that architecture requires;
* ``write_tile`` — the reverse;
* ``tile_io_time`` — the isolated duration of one tile fetch (used by
  the pipeline model of Fig. 10).

All three architectures implement the same interface, so workloads and
benchmarks are architecture-agnostic — which is exactly the programming
model NDS advocates (§5.1).

Every dataset-level operation is a typed
:class:`~repro.runtime.tileop.TileOp` routed through the system's
:class:`~repro.runtime.scheduler.RequestScheduler`: the synchronous
``read_tile``/``write_tile``/``ingest`` facade builds an op on the
ungated default stream (bit-identical to the seed-era direct call
path), while multi-tenant runs create named streams with queue depths
and submit batches. Concrete systems implement the ``_execute_*``
hooks, which hold the per-architecture analytic flows.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.runtime.scheduler import RequestScheduler
from repro.runtime.tileop import DEFAULT_STREAM, TileOp
from repro.runtime.trace import TraceRecorder
from repro.sim.stats import StatSet

__all__ = ["SystemOpResult", "StorageSystem", "row_runs"]


@dataclass
class SystemOpResult:
    """Outcome of one dataset-level operation."""

    start_time: float
    end_time: float
    useful_bytes: int = 0
    fetched_bytes: int = 0
    requests: int = 0
    data: Optional[np.ndarray] = None
    stats: StatSet = field(default_factory=StatSet)

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time

    @property
    def effective_bandwidth(self) -> float:
        """Application-payload bytes per second."""
        if self.elapsed <= 0:
            return 0.0
        return self.useful_bytes / self.elapsed


class StorageSystem(abc.ABC):
    """One end-to-end architecture (baseline / software NDS / hardware
    NDS / oracle)."""

    name: str = "abstract"

    #: host translation layer over a device pool (None = classic
    #: single-device system; set by :meth:`_init_cluster` when a
    #: constructor is given ``devices > 1`` or an explicit pool)
    cluster = None

    #: host DRAM cache tier (None = uncached, bit-identical; set by
    #: :meth:`_init_tier` when a constructor is given ``cache=``)
    tier = None

    # ------------------------------------------------------------------
    # the request spine
    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> RequestScheduler:
        """The system's request scheduler (created on first use)."""
        sched = getattr(self, "_scheduler", None)
        if sched is None:
            sched = RequestScheduler(self)
            self._scheduler = sched
        return sched

    def set_trace(self, recorder: Optional[TraceRecorder]) -> None:
        """Attach (or detach with None) a trace recorder to the
        scheduler and to every instrumented component this system
        exposes (host CPU, link, I/O engine, controller, flash)."""
        self.scheduler.trace = recorder
        if self.cluster is not None:
            self.cluster.set_trace(recorder)
            return
        for attr in ("cpu", "link", "engine", "controller"):
            component = getattr(self, attr, None)
            if component is not None and hasattr(component, "trace"):
                component.trace = recorder
        for holder in (self, getattr(self, "ssd", None)):
            flash = getattr(holder, "flash", None)
            if flash is not None and hasattr(flash, "trace"):
                flash.trace = recorder
        for holder in (getattr(self, "ssd", None), getattr(self, "stl", None)):
            gc = getattr(holder, "gc", None)
            if gc is not None and hasattr(gc, "trace"):
                gc.trace = recorder

    def set_metrics(self, registry) -> None:
        """Attach (or detach with None) a
        :class:`~repro.obs.metrics.MetricsRegistry` to the scheduler and
        every instrumented component, mirroring :meth:`set_trace`.
        Flash channel/bank timelines additionally get a reservation
        observer so per-server busy counters accumulate without a trace.
        Observation never feeds back into timing: with no registry
        attached the model is bit-identical."""
        self.scheduler.metrics = registry
        if self.cluster is not None:
            self.cluster.set_metrics(registry)
            return
        observer = registry.timeline_observer() if registry is not None \
            else None
        for attr in ("cpu", "link", "engine", "controller"):
            component = getattr(self, attr, None)
            if component is not None and hasattr(component, "metrics"):
                component.metrics = registry
        for holder in (self, getattr(self, "ssd", None)):
            flash = getattr(holder, "flash", None)
            if flash is not None and hasattr(flash, "metrics"):
                flash.metrics = registry
                for line in flash.channel_lines:
                    line.observer = observer
                for bank_row in flash.bank_lines:
                    for line in bank_row:
                        line.observer = observer
        for holder in (getattr(self, "ssd", None), getattr(self, "stl", None)):
            gc = getattr(holder, "gc", None)
            if gc is not None and hasattr(gc, "metrics"):
                gc.metrics = registry
        if self.tier is not None:
            self.tier.metrics = registry

    def fault_counters(self) -> Optional[dict]:
        """Snapshot of the flash fault injector's counters (None when no
        injector is attached) — the scheduler diffs this around each op
        for per-stream error/retry metrics."""
        if self.cluster is not None:
            return self.cluster.fault_counters()
        for holder in (self, getattr(self, "ssd", None)):
            flash = getattr(holder, "flash", None)
            if flash is not None and getattr(flash, "faults", None) is not None:
                return flash.faults.counters()
        return None

    # ------------------------------------------------------------------
    # host DRAM cache tier (optional; absent = bit-identical)
    # ------------------------------------------------------------------
    def _init_tier(self, cache) -> None:
        """Attach a :class:`~repro.cache.HostTierCache` when the
        constructor was given ``cache=CacheConfig(...)``. With the knob
        absent nothing is attached and every timed float is
        bit-identical to the uncached model."""
        if cache is None:
            return
        from repro.cache import HostTierCache
        self.tier = HostTierCache(cache)
        self.tier.flush_fn = self._flush_cache_entry

    def _flush_cache_entry(self, entry, now: float) -> float:
        """Replay the architecture's device write path for one dirty
        cached region (write-back durability). Systems that support
        ``write_back=True`` override this."""
        raise NotImplementedError(
            f"{self.name} does not support write-back caching")

    def _member_systems(self) -> tuple:
        """Pool member systems (empty for single-device systems)."""
        if self.cluster is None:
            return ()
        return tuple(handle.system for handle in self.cluster.pool.devices)

    def cache_counters(self) -> Optional[dict]:
        """Snapshot of the DRAM tier's counters (summed over pool
        members when clustered; None with no tier attached) — the
        scheduler diffs this around each op for per-stream hit rates."""
        if self.tier is not None:
            return self.tier.counters_snapshot()
        totals: Optional[dict] = None
        for member in self._member_systems():
            tier = member.tier
            if tier is None:
                continue
            if totals is None:
                totals = {}
            for key, value in tier.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def cache_dirty_bytes(self) -> Optional[int]:
        """Bytes currently buffered dirty in the DRAM tier (summed over
        pool members when clustered; None with no tier attached) — the
        live monitor and the trace counter track sample this."""
        if self.tier is not None:
            return self.tier.dirty_bytes
        total: Optional[int] = None
        for member in self._member_systems():
            if member.tier is None:
                continue
            total = (total or 0) + member.tier.dirty_bytes
        return total

    def flush_cache(self, start_time: float = 0.0) -> float:
        """Durability fence: write every buffered dirty region back to
        flash. Returns the completion time (``start_time`` when there
        is nothing to flush or no tier attached)."""
        if self.tier is not None:
            return self.tier.flush_all(start_time)
        end = start_time
        for member in self._member_systems():
            end = max(end, member.flush_cache(start_time))
        return end

    def cache_report(self) -> Optional[dict]:
        """Deterministic tier summary (aggregated over pool members
        when clustered; None with no tier attached)."""
        if self.tier is not None:
            return self.tier.report()
        reports = [m.cache_report() for m in self._member_systems()]
        reports = [r for r in reports if r is not None]
        if not reports:
            return None
        merged = dict(reports[0])
        for report in reports[1:]:
            for key, value in report.items():
                if isinstance(value, bool) or not isinstance(value, int):
                    continue
                merged[key] = merged.get(key, 0) + value
        demand = merged["hits"] + merged["misses"]
        merged["hit_rate"] = (round(merged["hits"] / demand, 6)
                              if demand else 0.0)
        merged["prefetch_accuracy"] = (
            round(merged["prefetch_hits"] / merged["prefetch_issued"], 6)
            if merged["prefetch_issued"] else 0.0)
        return merged

    def _execute_op(self, op: TileOp, earliest_start: float) -> SystemOpResult:
        """Dispatch one scheduled op to the architecture's flow."""
        if self.cluster is not None:
            return self.cluster.execute(op, earliest_start)
        if op.kind == "read":
            return self._execute_read(op.dataset, op.origin, op.extents,
                                      earliest_start, op.with_data, op.dtype)
        if op.kind == "write":
            return self._execute_write(op.dataset, op.origin, op.extents,
                                       op.data, earliest_start, **op.params)
        if op.kind == "ingest":
            return self._execute_ingest(op.dataset, op.extents,
                                        op.element_size, op.data,
                                        earliest_start, **op.params)
        raise ValueError(f"unknown TileOp kind {op.kind!r}")

    # ------------------------------------------------------------------
    # synchronous facade (single stream, never queue-depth gated)
    # ------------------------------------------------------------------
    def ingest(self, dataset: str, dims: Sequence[int], element_size: int,
               data: Optional[np.ndarray] = None,
               start_time: float = 0.0, **params) -> SystemOpResult:
        """Store a dataset; ``data`` (shape ``dims``) enables functional
        verification, None runs timing-only. Extra keywords reach the
        architecture (baseline: ``layout=``, oracle: ``tile=``)."""
        op = TileOp.ingest(dataset, dims, element_size, data=data,
                           submit_time=start_time, **params)
        return self.scheduler.execute(op).result

    def read_tile(self, dataset: str, origin: Sequence[int],
                  extents: Sequence[int], start_time: float = 0.0,
                  with_data: bool = False,
                  dtype: Optional[np.dtype] = None,
                  stream: str = DEFAULT_STREAM) -> SystemOpResult:
        """Fetch a tile into host memory ready for the compute kernel."""
        op = TileOp.read(dataset, origin, extents, submit_time=start_time,
                         with_data=with_data, dtype=dtype, stream=stream)
        return self.scheduler.execute(op).result

    def write_tile(self, dataset: str, origin: Sequence[int],
                   extents: Sequence[int],
                   data: Optional[np.ndarray] = None,
                   start_time: float = 0.0,
                   stream: str = DEFAULT_STREAM) -> SystemOpResult:
        """Store a tile back."""
        op = TileOp.write(dataset, origin, extents, data=data,
                          submit_time=start_time, stream=stream)
        return self.scheduler.execute(op).result

    # ------------------------------------------------------------------
    # architecture hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _execute_ingest(self, dataset: str, dims: Tuple[int, ...],
                        element_size: int, data: Optional[np.ndarray],
                        start_time: float, **params) -> SystemOpResult:
        """Architecture flow behind :meth:`ingest`."""

    @abc.abstractmethod
    def _execute_read(self, dataset: str, origin: Tuple[int, ...],
                      extents: Tuple[int, ...], start_time: float,
                      with_data: bool,
                      dtype: Optional[np.dtype]) -> SystemOpResult:
        """Architecture flow behind :meth:`read_tile`."""

    @abc.abstractmethod
    def _execute_write(self, dataset: str, origin: Tuple[int, ...],
                       extents: Tuple[int, ...],
                       data: Optional[np.ndarray],
                       start_time: float) -> SystemOpResult:
        """Architecture flow behind :meth:`write_tile`."""

    @abc.abstractmethod
    def reset_time(self) -> None:
        """Zero every timeline (contents preserved) for a fresh
        measurement phase. Implementations call
        :meth:`_reset_runtime` to clear scheduler history too."""

    def _reset_runtime(self) -> None:
        """Clear scheduler completion windows and op history."""
        sched = getattr(self, "_scheduler", None)
        if sched is not None:
            sched.reset()

    # ------------------------------------------------------------------
    # device-pool hooks (multi-device operation)
    # ------------------------------------------------------------------
    def _init_cluster(self, devices: int, pool, faults, rebalance,
                      extents_per_device: int, factory,
                      parallel: int = 0) -> bool:
        """Attach a :class:`~repro.cluster.ClusterTranslationLayer` when
        the constructor asked for more than one device.

        ``factory(device_id, device_faults)`` builds one member system;
        with ``devices=1`` and no explicit pool nothing is attached and
        the caller proceeds with the classic single-device construction
        (every existing code path stays bit-identical). Returns True
        when pooled. ``parallel`` > 0 runs pool members in that many
        worker processes (see :mod:`repro.cluster.parallel`); reports
        stay byte-identical to the serial pool.
        """
        if pool is None and devices <= 1:
            return False
        from repro.cluster import (ClusterTranslationLayer, DevicePool,
                                   split_fault_config)
        if pool is None:
            count = int(devices)
            pool = DevicePool.from_factory(
                count,
                lambda i: factory(i, split_fault_config(faults, i, count)),
                parallel=parallel)
        elif parallel:
            pool.parallel = int(parallel)
        parity = bool(faults.parity) if faults is not None else False
        self.cluster = ClusterTranslationLayer(
            pool, self, parity=parity,
            extents_per_device=extents_per_device, rebalance=rebalance)
        if faults is not None and faults.plan is not None:
            for event in faults.plan.events:
                if event.kind == "kill_device":
                    pool.schedule_kill(event.device, event.time)
        return True

    def _cluster_align(self, dims: Sequence[int], element_size: int,
                       params: dict) -> int:
        """Axis-0 quantum extent boundaries must honour (asked on a
        pool member): 1 row unless the architecture has a natural unit
        (NDS building-block height, oracle tile height)."""
        return 1

    def _cluster_ingest_key(self, dataset: str, dims: Tuple[int, ...],
                            params: dict):
        """Host-layer identity of an ingested dataset."""
        return dataset

    def _cluster_read_key(self, dataset: str, extents: Tuple[int, ...]):
        """Host-layer lookup key for a read/write of ``dataset``."""
        return dataset

    def device_report(self):
        """Per-device accounting (None for single-device systems)."""
        if self.cluster is None:
            return None
        return self.cluster.device_report()

    # ------------------------------------------------------------------
    def tile_io_time(self, dataset: str, origin: Sequence[int],
                     extents: Sequence[int]) -> float:
        """Isolated duration of one tile fetch, used as the I/O stage
        time of the Fig. 10 pipeline model."""
        self.reset_time()
        result = self.read_tile(dataset, origin, extents, start_time=0.0,
                                with_data=False)
        return result.elapsed


def row_runs(dims: Sequence[int], origin: Sequence[int],
             extents: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    """Contiguous element runs of a tile in a row-major dataset.

    Returns ``((linear_start, length), ...)``, one per tile row (rows
    that merge into a fully contiguous range are coalesced).
    """
    rank = len(dims)
    if rank == 0:
        return ()
    strides = [1] * rank
    for axis in range(rank - 2, -1, -1):
        strides[axis] = strides[axis + 1] * dims[axis + 1]
    # Fully contiguous tail: a run may span axis k when every deeper
    # axis is covered entirely.
    contiguous_tail = rank - 1
    while (contiguous_tail > 0
           and extents[contiguous_tail] == dims[contiguous_tail]):
        contiguous_tail -= 1
    # Length of one run = product of extents over covered tail axes.
    run_length = 1
    for axis in range(contiguous_tail, rank):
        run_length *= extents[axis]

    outer_axes = range(contiguous_tail)
    counters = [0] * contiguous_tail
    runs = []
    while True:
        linear = 0
        for axis in outer_axes:
            linear += (origin[axis] + counters[axis]) * strides[axis]
        for axis in range(contiguous_tail, rank):
            linear += origin[axis] * strides[axis]
        runs.append((linear, run_length))
        # odometer increment over the outer axes
        axis = contiguous_tail - 1
        while axis >= 0:
            counters[axis] += 1
            if counters[axis] < extents[axis]:
                break
            counters[axis] = 0
            axis -= 1
        if axis < 0:
            break
    return tuple(runs)
