"""Baseline SSD management layer: page-mapped FTL, GC, wear, LBA device."""

from repro.ftl.gc import GarbageCollector, GcResult
from repro.ftl.mapping import BlockState, OutOfSpaceError, PageMapFTL, PlaneAllocator
from repro.ftl.ssd import BaselineSSD, DeviceOpResult
from repro.ftl.wear import WearReport, erases_by_plane, wear_report

__all__ = [
    "PageMapFTL",
    "PlaneAllocator",
    "BlockState",
    "OutOfSpaceError",
    "GarbageCollector",
    "GcResult",
    "BaselineSSD",
    "DeviceOpResult",
    "WearReport",
    "wear_report",
    "erases_by_plane",
]
