"""Tests for §5.3.3 block-cipher compatibility."""

import numpy as np
import pytest

from repro.core import (SECTION_BYTES, BlockCipherModel, Space,
                        check_space_compatibility)
from repro.nvm import PAPER_PROTOTYPE, Geometry


class TestCipherModel:
    def test_encrypt_decrypt_roundtrip(self, rng):
        cipher = BlockCipherModel(key=0xABCD)
        plaintext = rng.integers(0, 256, 4 * SECTION_BYTES).astype(np.uint8)
        ciphertext = cipher.encrypt(plaintext, tweak=7)
        assert not np.array_equal(ciphertext, plaintext)
        assert np.array_equal(cipher.decrypt(ciphertext, tweak=7),
                              plaintext)

    def test_size_preserving(self, rng):
        cipher = BlockCipherModel()
        plaintext = rng.integers(0, 256, 8 * SECTION_BYTES).astype(np.uint8)
        assert cipher.encrypt(plaintext).size == plaintext.size

    def test_section_alignment_enforced(self):
        cipher = BlockCipherModel()
        with pytest.raises(ValueError):
            cipher.encrypt(np.zeros(SECTION_BYTES + 1, dtype=np.uint8))

    def test_different_tweaks_differ(self, rng):
        cipher = BlockCipherModel()
        plaintext = rng.integers(0, 256, SECTION_BYTES).astype(np.uint8)
        assert not np.array_equal(cipher.encrypt(plaintext, tweak=1),
                                  cipher.encrypt(plaintext, tweak=2))

    def test_crypt_time_scales(self):
        cipher = BlockCipherModel(throughput=1e9,
                                  per_section_overhead=0.0)
        assert cipher.crypt_time(10**6) == pytest.approx(1e-3)
        assert cipher.crypt_time(2 * 10**6) > cipher.crypt_time(10**6)


class TestCompatibility:
    def test_prototype_blocks_are_compatible(self):
        """§5.3.3: 'the cases where the encryption section size is
        larger than the dimension size of a building block is near
        zero' — true for every realistic element size here."""
        for element_size in (1, 2, 4, 8):
            space = Space.create(1, (4096, 4096), element_size,
                                 PAPER_PROTOTYPE.geometry)
            assert check_space_compatibility(space)

    def test_pathologically_narrow_block_flagged(self):
        geometry = Geometry(channels=2, banks_per_channel=1, page_size=64)
        space = Space.create(1, (4096, 4096), 1, geometry,
                             bb_override=(4096, 8))
        # innermost block dimension: 8 elements × 1 B < 32 B section
        assert not check_space_compatibility(space)

    def test_1d_space(self):
        space = Space.create(1, (10**6,), 4, PAPER_PROTOTYPE.geometry)
        assert check_space_compatibility(space)
