"""Tests for the NVM timing model."""

import pytest

from repro.nvm import NvmTiming


def test_transfer_time():
    t = NvmTiming(channel_bandwidth=400e6)
    assert t.transfer_time(4096) == pytest.approx(4096 / 400e6)


def test_internal_read_bandwidth_channel_limited():
    # transfer (10.24 us) dominates t_read/banks (7.5 us)
    t = NvmTiming(t_read=60e-6, channel_bandwidth=400e6)
    bw = t.internal_read_bandwidth(32, 8, 4096)
    assert bw == pytest.approx(32 * 400e6)


def test_internal_read_bandwidth_bank_limited():
    # few banks: t_read/banks (30 us) dominates transfer
    t = NvmTiming(t_read=60e-6, channel_bandwidth=400e6)
    bw = t.internal_read_bandwidth(32, 2, 4096)
    assert bw == pytest.approx(32 * 4096 / 30e-6)


def test_internal_write_slower_than_read():
    t = NvmTiming()
    assert (t.internal_write_bandwidth(32, 8, 4096)
            < t.internal_read_bandwidth(32, 8, 4096))


def test_paper_ratio_internal_to_external():
    """§7.2: the prototype's internal:external bandwidth ratio is 8:5."""
    from repro.nvm import PAPER_PROTOTYPE
    ratio = (PAPER_PROTOTYPE.internal_read_bandwidth
             / PAPER_PROTOTYPE.link_bandwidth)
    assert ratio == pytest.approx(8.0 / 5.0, rel=0.05)


@pytest.mark.parametrize("field,value", [
    ("t_read", 0.0), ("t_program", -1.0), ("channel_bandwidth", 0.0),
    ("t_cmd", -1e-9),
])
def test_invalid_parameters(field, value):
    with pytest.raises(ValueError):
        NvmTiming(**{field: value})
