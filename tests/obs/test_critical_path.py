"""Critical-path attribution: classification, the partition invariant
(attributed time sums to service time), and dominance rules."""

from __future__ import annotations

import pytest

from repro.nvm.profiles import TINY_TEST
from repro.obs.critical_path import (attribute_op, classify_span,
                                     critical_path)
from repro.runtime.tileop import TileOp
from repro.runtime.trace import TraceRecorder, TraceSpan
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)


def _span(name, resource, start, end, op_id=0, **args):
    return TraceSpan(name=name, resource=resource, stream="s",
                     start=start, end=end, op_id=op_id,
                     args=tuple(sorted(args.items())))


class TestClassify:
    @pytest.mark.parametrize("name,resource,layer", [
        ("issue_io", "host_issue", "host_issue"),
        ("stl_translate", "host_issue", "stl"),   # name beats resource
        ("host_copy", "host_copy", "host_copy"),
        ("link_transfer", "link", "link"),
        ("nvme_command", "ctrl_cmd", "controller"),
        ("stl_allocate", "ctrl_alloc", "stl"),
        ("assemble", "ctrl_assemble", "controller"),
        ("ftl_map", "device_ctrl", "ftl"),
        ("nand_read", "ch2/bk1", "bank"),
        ("read_retry", "ch0/bk0", "bank"),
        ("page_out", "ch3", "channel"),
        ("page_in", "ch0", "channel"),
    ])
    def test_known_span_names(self, name, resource, layer):
        assert classify_span(_span(name, resource, 0, 1)) == layer

    def test_resource_fallback_for_custom_names(self):
        assert classify_span(_span("custom", "ch5/bk2", 0, 1)) == "bank"
        assert classify_span(_span("custom", "ch5", 0, 1)) == "channel"
        assert classify_span(_span("custom", "aes_engine", 0, 1)) == \
            "controller"
        assert classify_span(_span("custom", "mystery", 0, 1)) == \
            "unattributed"


class TestAttributeOp:
    def test_partition_sums_to_service_time(self):
        op = _span("read", "ops", 0.0, 10.0)
        children = [_span("issue_io", "host_issue", 0.0, 2.0),
                    _span("nand_read", "ch0/bk0", 2.0, 7.0),
                    _span("page_out", "ch0", 7.0, 9.0)]
        att = attribute_op(op, children)
        assert att.attributed_total == pytest.approx(att.service_time)
        assert att.by_layer["host_issue"] == pytest.approx(2.0)
        assert att.by_layer["bank"] == pytest.approx(5.0)
        assert att.by_layer["channel"] == pytest.approx(2.0)
        # trailing gap with nothing after it stays unattributed
        assert att.by_layer["unattributed"] == pytest.approx(1.0)
        assert att.dominant == "bank"

    def test_latest_started_span_wins_overlap(self):
        op = _span("read", "ops", 0.0, 10.0)
        # bank span nests inside a long channel hold
        children = [_span("page_out", "ch0", 0.0, 10.0),
                    _span("nand_read", "ch0/bk0", 3.0, 6.0)]
        att = attribute_op(op, children)
        assert att.by_layer["bank"] == pytest.approx(3.0)
        assert att.by_layer["channel"] == pytest.approx(7.0)

    def test_stall_charged_to_next_layer(self):
        op = _span("read", "ops", 0.0, 10.0)
        # gap in [2, 6) before the bank span: blocked waiting for the
        # bank, so the stall is bank time
        children = [_span("issue_io", "host_issue", 0.0, 2.0),
                    _span("nand_read", "ch0/bk0", 6.0, 10.0)]
        att = attribute_op(op, children)
        assert att.by_layer["host_issue"] == pytest.approx(2.0)
        assert att.by_layer["bank"] == pytest.approx(8.0)
        assert "unattributed" not in att.by_layer

    def test_children_clipped_to_op_interval(self):
        op = _span("read", "ops", 2.0, 8.0)
        children = [_span("issue_io", "host_issue", 0.0, 4.0),
                    _span("page_out", "ch0", 7.0, 11.0)]
        att = attribute_op(op, children)
        assert att.attributed_total == pytest.approx(6.0)
        assert att.by_layer["host_issue"] == pytest.approx(2.0)
        # clipped channel span (1s) plus the stall in [4, 7) waiting
        # on the channel (3s)
        assert att.by_layer["channel"] == pytest.approx(4.0)

    def test_queue_wait_comes_from_op_args(self):
        op = _span("read", "ops", 1.0, 2.0, queue_wait=0.25)
        att = attribute_op(op, [])
        assert att.queue_wait == pytest.approx(0.25)


ALL_SYSTEMS = [BaselineSystem, SoftwareNdsSystem, HardwareNdsSystem,
               OracleSystem]


class TestPartitionInvariantOnRealSystems:
    @pytest.mark.parametrize("factory", ALL_SYSTEMS,
                             ids=[f.name for f in ALL_SYSTEMS])
    def test_per_op_attribution_sums_to_latency(self, factory):
        """ISSUE acceptance: the summed attributed time of every op
        equals its end-to-end service latency within float tolerance,
        on all four architectures, including overlapped queued ops."""
        system = factory(TINY_TEST, store_data=False)
        if factory is OracleSystem:
            system.ingest("d", (64, 64), 4, tile=(16, 16))
        else:
            system.ingest("d", (64, 64), 4)
        system.reset_time()
        trace = TraceRecorder()
        system.set_trace(trace)
        scheduler = system.scheduler
        scheduler.stream("t", 4)
        for origin in ((0, 0), (16, 16), (32, 0), (0, 32), (48, 48)):
            scheduler.submit(TileOp.read("d", origin, (16, 16),
                                         submit_time=0.0, stream="t"))
        scheduler.drain()

        report = critical_path(trace)
        assert len(report.ops) == 5
        for op in report.ops:
            assert op.attributed_total == pytest.approx(
                op.service_time, abs=1e-12)
        assert report.total_service_time > 0
        assert report.layer_totals()
        shares = report.layer_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
