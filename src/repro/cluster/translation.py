"""The host-level translation layer over a device pool.

SALSA's thesis, applied to NDS: keep each device's translation layer
simple and independent, and put the cross-device smarts in a thin host
layer. :class:`ClusterTranslationLayer` intercepts the owning system's
dataset-level operations and

* **declusters** every dataset into axis-0 extents spread over the
  allowed devices (:mod:`repro.cluster.layout`), each extent stored as
  an ordinary device-local dataset;
* **arbitrates** sub-operations per device through the pool's
  queue-depth windows, so independent devices overlap while each
  device's own queue stays bounded;
* **survives whole-device loss** when cross-device parity is enabled:
  reads of extents on a dead device are served by XOR-reconstructing
  from the surviving parity-group members, and the reconstructed extent
  is relocated to a live device on first touch (rebuild-on-read);
* **coordinates garbage collection** so at most one device runs
  background GC per host-level operation (:class:`GcCoordinator`);
* **detects hot extents** and migrates them from the hottest to the
  coldest device under live traffic (:class:`RebalancePolicy`).

Everything here models *time* the same way the single-device stack
does: sub-operations are real inner-system operations on real
timelines, and functional payloads (when ``store_data`` is on) ride
along so byte-equality can be asserted under faults and migration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.layout import (ClusterLayout, Extent, ParityExtent,
                                  build_layout)
from repro.cluster.pool import DevicePool
from repro.cluster.sharding import PoolShardSpec
from repro.core.api import bytes_to_array
from repro.faults.errors import DegradedReadError
from repro.sim.stats import StatSet

__all__ = ["RebalancePolicy", "GcCoordinator", "ClusterTranslationLayer",
           "split_fault_config"]


def split_fault_config(config, device: int, pool_size: int):
    """Derive device ``device``'s :class:`~repro.faults.model.FaultConfig`
    from the pool-level one.

    Each device's injector receives only its own plan events, and the
    ``parity`` flag is cleared — redundancy moves from within-device
    XOR stripes to cross-device parity groups owned by the host layer.
    """
    if config is None:
        return None
    plan = None
    if config.plan is not None:
        from repro.faults.plan import FaultPlan
        events = [event for event in config.plan.events
                  if event.device == device]
        if events:
            plan = FaultPlan()
            plan.events.extend(events)
    return replace(config, parity=False, plan=plan,
                   seed=config.seed + device)


@dataclass(frozen=True)
class RebalancePolicy:
    """When and how aggressively to migrate hot extents.

    Every ``check_interval`` host-level operations the layer compares
    per-device heat (decayed access counts); when the hottest live
    device carries at least ``ratio`` times the coldest's heat (and at
    least ``min_heat``), the hottest extent moves to the coldest
    device. ``decay`` ages heat so old bursts stop driving migration.
    """

    check_interval: int = 16
    ratio: float = 2.0
    min_heat: float = 8.0
    decay: float = 0.9

    def __post_init__(self) -> None:
        if self.check_interval < 1:
            raise ValueError("rebalance check interval must be >= 1")
        if self.ratio < 1.0:
            raise ValueError("rebalance ratio below 1 would thrash")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("heat decay must be in (0, 1]")


class GcCoordinator:
    """Round-robin background-GC token over the pool's STL devices.

    A single device pool must not have every device collecting at once
    (that is exactly the tail-latency cliff SALSA-style host layers
    exist to avoid). The coordinator hands one idle-time GC budget to
    one live device per host-level operation, in round-robin order, so
    collections on different devices never pile onto the same op.
    """

    def __init__(self, pool: DevicePool,
                 budget_seconds: float = 2e-3) -> None:
        self.pool = pool
        self.budget_seconds = budget_seconds
        self._next = 0
        self.stats = StatSet()

    def offer(self, now: float) -> None:
        """Give one device its idle-time GC slice at model time ``now``."""
        count = len(self.pool)
        workers = self.pool.workers
        for step in range(count):
            device = (self._next + step) % count
            if self.pool.is_dead(device):
                continue
            # structure check only — in parallel mode the parent's
            # member system is a stale mirror, but whether the device
            # architecture has a background-collectable STL is fixed at
            # construction
            stl = getattr(self.pool.handle(device).system, "stl", None)
            gc = getattr(stl, "gc", None)
            if gc is None:
                continue
            self._next = (device + 1) % count
            if workers is not None:
                ran, erased = workers.gc_offer(device, now,
                                               self.budget_seconds)
            else:
                result = gc.collect_background(now, self.budget_seconds)
                ran, erased = result.ran, result.blocks_erased
            if ran:
                self.stats.count("cluster_gc_runs")
                self.stats.count("cluster_gc_blocks_erased", erased)
                self.pool.note(device, "gc_background_blocks", erased)
            return

    def gc_report(self) -> Dict[str, int]:
        return dict(self.stats.counters)


class ClusterTranslationLayer:
    """Decluster one system's datasets over a :class:`DevicePool`."""

    def __init__(self, pool: DevicePool, owner,
                 parity: bool = False, extents_per_device: int = 1,
                 rebalance: Optional[RebalancePolicy] = None,
                 gc_budget_seconds: float = 2e-3) -> None:
        self.pool = pool
        self.owner = owner
        self.parity = parity
        self.extents_per_device = max(1, int(extents_per_device))
        self.rebalance = rebalance
        self.gc = GcCoordinator(pool, gc_budget_seconds)
        #: ingest key (architecture-specific) -> layout
        self.layouts: Dict[object, ClusterLayout] = {}
        self._layout_seq = 0
        #: (layout ordinal, extent index) -> decayed access count
        self.heat: Dict[Tuple[int, int], float] = {}
        self._ops_since_check = 0
        self.stats = StatSet()
        self.trace = None
        self.metrics = None

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def template(self):
        """The inner system the architecture hooks are asked on (all
        pool members are the same class with the same geometry)."""
        return self.pool.devices[0].system

    @property
    def store_data(self) -> bool:
        return bool(getattr(self.template, "store_data", False))

    def execute(self, op, earliest_start: float):
        """Run one dataset-level op across the pool (the owning
        system's ``_execute_op`` delegates here when pooled)."""
        self.pool.observe(earliest_start)
        workers = (self._parallel_workers()
                   if self.pool.parallel > 0 else None)
        if op.kind == "ingest":
            result = (self._ingest_parallel(op, earliest_start, workers)
                      if workers is not None
                      else self._ingest(op, earliest_start))
        elif op.kind == "read":
            result = (self._read_parallel(op, earliest_start, workers)
                      if workers is not None
                      else self._read(op, earliest_start))
        elif op.kind == "write":
            result = (self._write_parallel(op, earliest_start, workers)
                      if workers is not None
                      else self._write(op, earliest_start))
        else:
            raise ValueError(f"unknown TileOp kind {op.kind!r}")
        self._ops_since_check += 1
        self.gc.offer(result.end_time)
        if self.rebalance is not None:
            self._maybe_rebalance(result.end_time)
        return result

    def _parallel_workers(self):
        """Spawn (lazily) and return the pool's worker group.

        Every feature that keeps cross-device or observer state a fork
        would split is refused up front rather than silently diverging:
        parity RMW orders sub-ops *across* devices, rebalance/kill plans
        mutate extent homes mid-run, and trace/metrics recorders attach
        in-process observers the workers could not reach.
        """
        workers = self.pool.workers
        if workers is not None:
            return workers
        if self.parity:
            raise RuntimeError(
                "parallel device workers do not support cross-device "
                "parity (RMW chains order sub-ops across devices)")
        if self.rebalance is not None:
            raise RuntimeError(
                "parallel device workers do not support rebalancing")
        if self.trace is not None or self.metrics is not None:
            raise RuntimeError(
                "parallel device workers do not support trace/metrics "
                "recorders (in-process observers)")
        if self.pool.has_kill_plan:
            raise RuntimeError(
                "parallel device workers do not support whole-device "
                "kill plans")
        if self.pool.fault_counters() is not None:
            raise RuntimeError(
                "parallel device workers do not support per-device "
                "fault injection")
        return self.pool.ensure_workers()

    @staticmethod
    def _record_result(record):
        """Rehydrate one worker result record as a SystemOpResult."""
        from repro.systems.base import SystemOpResult
        return SystemOpResult(
            start_time=record["start_time"], end_time=record["end_time"],
            useful_bytes=record["useful_bytes"],
            fetched_bytes=record["fetched_bytes"],
            requests=record["requests"], data=record["data"])

    def _instant(self, time: float, name: str, **args) -> None:
        if self.trace is not None:
            self.trace.instant("cluster", time, name, **args)

    def _count(self, name: str, amount: int = 1) -> None:
        self.stats.count(name, amount)
        if self.metrics is not None:
            self.metrics.count(f"cluster.{name}", amount)

    # ------------------------------------------------------------------
    # ingest: build the layout and place every extent
    # ------------------------------------------------------------------
    def _ingest_prepare(self, op):
        """Shared ingest prologue: resolve placement, build the layout
        and validate the functional payload. Returns ``(key, layout,
        array, dims, elem)``; the caller registers the layout once the
        extents are placed."""
        params = dict(op.params)
        pool_shard = PoolShardSpec.normalize(params.pop("shard", None))
        dims = tuple(int(d) for d in op.extents)
        elem = int(op.element_size)
        template = self.template
        key = template._cluster_ingest_key(op.dataset, dims, params)
        if key in self.layouts:
            raise ValueError(f"dataset {op.dataset!r} already ingested")
        allowed = (pool_shard.device_subset(len(self.pool))
                   if pool_shard is not None else tuple(range(len(self.pool))))
        placement = tuple(d for d in allowed if not self.pool.is_dead(d))
        if not placement:
            raise ValueError(
                f"no live devices left in placement set {allowed}")
        inner_params = dict(params)
        if pool_shard is not None and pool_shard.shard is not None:
            inner_params["shard"] = pool_shard.shard
        align = template._cluster_align(dims, elem, inner_params)
        layout = build_layout(op.dataset, dims, elem, align, placement,
                              self._layout_seq,
                              extents_per_device=self.extents_per_device,
                              parity=self.parity, inner_params=inner_params)
        self._layout_seq += 1

        array = None
        if op.data is not None and self.store_data:
            array = np.ascontiguousarray(np.asarray(op.data))
            if tuple(array.shape) != dims:
                raise ValueError(
                    f"data shape {array.shape} != dims {dims}")
        return key, layout, array, dims, elem

    def _ingest(self, op, earliest: float):
        key, layout, array, dims, elem = self._ingest_prepare(op)
        completions: List[float] = []
        fetched = 0
        requests = 0
        for extent in layout.extents:
            handle = self.pool.handle(extent.device)
            start = handle.window.earliest(earliest)
            payload = (array[extent.row_start:extent.row_end]
                       if array is not None else None)
            res = handle.system.ingest(
                extent.store_key, (extent.rows,) + dims[1:], elem,
                data=payload, start_time=start, **layout.inner_params)
            handle.window.complete(res.end_time)
            self.pool.note_io(extent.device, res)
            self.pool.note(extent.device, "extents")
            completions.append(res.end_time)
            fetched += res.fetched_bytes
            requests += res.requests
        for parity in layout.parity:
            handle = self.pool.handle(parity.device)
            start = handle.window.earliest(earliest)
            payload = None
            if array is not None:
                payload = self._parity_payload(layout, parity, array)
            res = handle.system.ingest(
                parity.store_key, (parity.rows,) + dims[1:], elem,
                data=payload, start_time=start, **layout.inner_params)
            handle.window.complete(res.end_time)
            self.pool.note_io(parity.device, res)
            self.pool.note(parity.device, "extents")
            completions.append(res.end_time)
            fetched += res.fetched_bytes
            requests += res.requests
        self.layouts[key] = layout
        from repro.systems.base import SystemOpResult
        return SystemOpResult(
            start_time=earliest, end_time=max(completions, default=earliest),
            useful_bytes=layout.total_bytes, fetched_bytes=fetched,
            requests=requests)

    def _ingest_parallel(self, op, earliest: float, workers):
        """Parallel ingest: one batched call per worker, bookkeeping in
        extent order (identical to the serial loop's). Parity extents
        never occur here — :meth:`_parallel_workers` refuses parity."""
        key, layout, array, dims, elem = self._ingest_prepare(op)
        calls = []
        for extent in layout.extents:
            payload = (array[extent.row_start:extent.row_end]
                       if array is not None else None)
            calls.append((extent.device, "ingest",
                          (extent.store_key, (extent.rows,) + dims[1:],
                           elem),
                          {"data": payload, **layout.inner_params},
                          earliest))
        records = workers.run_batch(calls)
        completions: List[float] = []
        fetched = 0
        requests = 0
        for extent, record in zip(layout.extents, records):
            res = self._record_result(record)
            self.pool.note_io(extent.device, res)
            self.pool.note(extent.device, "extents")
            completions.append(res.end_time)
            fetched += res.fetched_bytes
            requests += res.requests
        self.layouts[key] = layout
        from repro.systems.base import SystemOpResult
        return SystemOpResult(
            start_time=earliest, end_time=max(completions, default=earliest),
            useful_bytes=layout.total_bytes, fetched_bytes=fetched,
            requests=requests)

    def _parity_payload(self, layout: ClusterLayout, parity: ParityExtent,
                        array: np.ndarray) -> np.ndarray:
        """XOR of the group's member slabs, zero-padded to the parity
        extent's height, as elements of the dataset's dtype width."""
        elem = layout.element_size
        shape = (parity.rows,) + layout.dims[1:] + (elem,)
        acc = np.zeros(shape, dtype=np.uint8)
        for index in parity.members:
            extent = layout.extents[index]
            slab = np.ascontiguousarray(array[extent.row_start:extent.row_end])
            raw = slab.view(np.uint8).reshape(slab.shape + (slab.dtype.itemsize,))
            acc[:extent.rows] ^= raw
        return self._bytes_to_elements(acc, elem)

    @staticmethod
    def _bytes_to_elements(raw: np.ndarray, elem: int) -> np.ndarray:
        """Reinterpret a ``(..., elem)`` uint8 buffer as opaque ``elem``-
        byte elements, the shape inner ingests/writes expect."""
        shape = raw.shape
        flat = raw.reshape(shape[:-2] + (shape[-2] * shape[-1],))
        return np.ascontiguousarray(flat).view(np.dtype((np.void, elem)))

    # ------------------------------------------------------------------
    # read: scatter sub-reads, reassemble, reconstruct when degraded
    # ------------------------------------------------------------------
    def _layout_for(self, dataset: str, extents) -> ClusterLayout:
        key = self.template._cluster_read_key(dataset, tuple(extents))
        layout = self.layouts.get(key)
        if layout is None:
            raise ValueError(f"unknown dataset {dataset!r}")
        return layout

    def _read(self, op, earliest: float):
        layout = self._layout_for(op.dataset, op.extents)
        elem = layout.element_size
        extents = tuple(int(e) for e in op.extents)
        functional = op.with_data and self.store_data
        out = (np.zeros(extents + (elem,), dtype=np.uint8)
               if functional else None)
        completions: List[float] = []
        fetched = 0
        requests = 0
        for extent, lorigin, lextents, out_row in \
                layout.subregions(op.origin, extents):
            ready = self._ensure_alive(layout, extent, earliest)
            handle = self.pool.handle(extent.device)
            start = handle.window.earliest(ready)
            res = handle.system.read_tile(
                extent.store_key, lorigin, lextents, start_time=start,
                with_data=functional)
            handle.window.complete(res.end_time)
            self.pool.note_io(extent.device, res)
            if out is not None and res.data is not None:
                out[out_row:out_row + lextents[0]] = res.data
            self.heat[(layout.ordinal, extent.index)] = \
                self.heat.get((layout.ordinal, extent.index), 0.0) + 1.0
            completions.append(res.end_time)
            fetched += res.fetched_bytes
            requests += res.requests
        useful = elem
        for extent_len in extents:
            useful *= extent_len
        data = None
        if out is not None:
            data = out if op.dtype is None else bytes_to_array(out, op.dtype)
        from repro.systems.base import SystemOpResult
        return SystemOpResult(
            start_time=earliest, end_time=max(completions, default=earliest),
            useful_bytes=useful, fetched_bytes=fetched, requests=requests,
            data=data)

    def _read_parallel(self, op, earliest: float, workers):
        """Parallel read: ship every sub-read in one batch (each sub-op
        of one host op shares the same ready time — kill plans are
        refused, so ``_ensure_alive`` would be a pure passthrough) and
        fold results in subregion order, byte-identical to the serial
        loop."""
        from repro.cluster.parallel import merge_completions
        layout = self._layout_for(op.dataset, op.extents)
        elem = layout.element_size
        extents = tuple(int(e) for e in op.extents)
        functional = op.with_data and self.store_data
        out = (np.zeros(extents + (elem,), dtype=np.uint8)
               if functional else None)
        subs = list(layout.subregions(op.origin, extents))
        calls = [(extent.device, "read_tile",
                  (extent.store_key, lorigin, lextents),
                  {"with_data": functional}, earliest)
                 for extent, lorigin, lextents, _out_row in subs]
        records = workers.run_batch(calls)
        fetched = 0
        requests = 0
        for (extent, lorigin, lextents, out_row), record in \
                zip(subs, records):
            res = self._record_result(record)
            self.pool.note_io(extent.device, res)
            if out is not None and res.data is not None:
                out[out_row:out_row + lextents[0]] = res.data
            self.heat[(layout.ordinal, extent.index)] = \
                self.heat.get((layout.ordinal, extent.index), 0.0) + 1.0
            fetched += res.fetched_bytes
            requests += res.requests
        merged = merge_completions(records)
        end = merged[-1]["end_time"] if merged else earliest
        useful = elem
        for extent_len in extents:
            useful *= extent_len
        data = None
        if out is not None:
            data = out if op.dtype is None else bytes_to_array(out, op.dtype)
        from repro.systems.base import SystemOpResult
        return SystemOpResult(
            start_time=earliest, end_time=end, useful_bytes=useful,
            fetched_bytes=fetched, requests=requests, data=data)

    # ------------------------------------------------------------------
    # write: plain per-extent writes, or parity read-modify-write
    # ------------------------------------------------------------------
    def _write(self, op, earliest: float):
        layout = self._layout_for(op.dataset, op.extents)
        elem = layout.element_size
        extents = tuple(int(e) for e in op.extents)
        array = None
        if op.data is not None and self.store_data:
            array = np.ascontiguousarray(np.asarray(op.data))
            if tuple(array.shape) != extents:
                raise ValueError(
                    f"data shape {array.shape} != extents {extents}")
        completions: List[float] = []
        fetched = 0
        requests = 0
        for extent, lorigin, lextents, out_row in \
                layout.subregions(op.origin, extents):
            payload = (array[out_row:out_row + lextents[0]]
                       if array is not None else None)
            parity = layout.parity_of(extent)
            ready = self._ensure_alive(layout, extent, earliest)
            handle = self.pool.handle(extent.device)
            if parity is None:
                start = handle.window.earliest(ready)
                res = handle.system.write_tile(
                    extent.store_key, lorigin, lextents, data=payload,
                    start_time=start)
                handle.window.complete(res.end_time)
                self.pool.note_io(extent.device, res)
                completions.append(res.end_time)
                fetched += res.fetched_bytes
                requests += res.requests
            else:
                end, sub_fetched, sub_requests = self._parity_rmw(
                    layout, extent, parity, lorigin, lextents, payload,
                    ready, earliest)
                completions.append(end)
                fetched += sub_fetched
                requests += sub_requests
            self.heat[(layout.ordinal, extent.index)] = \
                self.heat.get((layout.ordinal, extent.index), 0.0) + 1.0
        useful = elem
        for extent_len in extents:
            useful *= extent_len
        from repro.systems.base import SystemOpResult
        return SystemOpResult(
            start_time=earliest, end_time=max(completions, default=earliest),
            useful_bytes=useful, fetched_bytes=fetched, requests=requests)

    def _write_parallel(self, op, earliest: float, workers):
        """Parallel write: plain per-extent writes only (parity RMW is
        refused by :meth:`_parallel_workers`), batched per worker and
        folded in subregion order."""
        from repro.cluster.parallel import merge_completions
        layout = self._layout_for(op.dataset, op.extents)
        elem = layout.element_size
        extents = tuple(int(e) for e in op.extents)
        array = None
        if op.data is not None and self.store_data:
            array = np.ascontiguousarray(np.asarray(op.data))
            if tuple(array.shape) != extents:
                raise ValueError(
                    f"data shape {array.shape} != extents {extents}")
        subs = list(layout.subregions(op.origin, extents))
        calls = []
        for extent, lorigin, lextents, out_row in subs:
            payload = (array[out_row:out_row + lextents[0]]
                       if array is not None else None)
            calls.append((extent.device, "write_tile",
                          (extent.store_key, lorigin, lextents),
                          {"data": payload}, earliest))
        records = workers.run_batch(calls)
        fetched = 0
        requests = 0
        for (extent, lorigin, lextents, out_row), record in \
                zip(subs, records):
            res = self._record_result(record)
            self.pool.note_io(extent.device, res)
            self.heat[(layout.ordinal, extent.index)] = \
                self.heat.get((layout.ordinal, extent.index), 0.0) + 1.0
            fetched += res.fetched_bytes
            requests += res.requests
        merged = merge_completions(records)
        end = merged[-1]["end_time"] if merged else earliest
        useful = elem
        for extent_len in extents:
            useful *= extent_len
        from repro.systems.base import SystemOpResult
        return SystemOpResult(
            start_time=earliest, end_time=end, useful_bytes=useful,
            fetched_bytes=fetched, requests=requests)

    def _parity_rmw(self, layout: ClusterLayout, extent: Extent,
                    parity: ParityExtent, lorigin, lextents, payload,
                    data_ready: float, earliest: float):
        """RAID small-write: read old data + old parity, write new data
        + (old parity xor old data xor new data)."""
        functional = payload is not None
        parity_ready = self._ensure_alive(layout, parity, earliest)
        data_handle = self.pool.handle(extent.device)
        parity_handle = self.pool.handle(parity.device)

        start = data_handle.window.earliest(data_ready)
        old_data = data_handle.system.read_tile(
            extent.store_key, lorigin, lextents, start_time=start,
            with_data=functional)
        data_handle.window.complete(old_data.end_time)
        self.pool.note_io(extent.device, old_data)

        start = parity_handle.window.earliest(parity_ready)
        old_parity = parity_handle.system.read_tile(
            parity.store_key, lorigin, lextents, start_time=start,
            with_data=functional)
        parity_handle.window.complete(old_parity.end_time)
        self.pool.note_io(parity.device, old_parity)

        start = data_handle.window.earliest(old_data.end_time)
        data_write = data_handle.system.write_tile(
            extent.store_key, lorigin, lextents, data=payload,
            start_time=start)
        data_handle.window.complete(data_write.end_time)
        self.pool.note_io(extent.device, data_write)

        new_parity = None
        if functional:
            raw = np.ascontiguousarray(payload)
            raw = raw.view(np.uint8).reshape(raw.shape + (raw.dtype.itemsize,))
            delta = old_parity.data ^ old_data.data ^ raw
            new_parity = self._bytes_to_elements(delta, layout.element_size)
        start = parity_handle.window.earliest(
            max(old_parity.end_time, old_data.end_time))
        parity_write = parity_handle.system.write_tile(
            parity.store_key, lorigin, lextents, data=new_parity,
            start_time=start)
        parity_handle.window.complete(parity_write.end_time)
        self.pool.note_io(parity.device, parity_write)

        fetched = sum(r.fetched_bytes for r in
                      (old_data, old_parity, data_write, parity_write))
        requests = sum(r.requests for r in
                       (old_data, old_parity, data_write, parity_write))
        return max(data_write.end_time, parity_write.end_time), fetched, \
            requests

    # ------------------------------------------------------------------
    # degraded reads, rebuild, migration
    # ------------------------------------------------------------------
    def _region_units(self, layout: ClusterLayout, origin, extents):
        """Sub-regions a device can serve in one read: the oracle only
        answers exact stored-tile regions, so regions are tiled; every
        other architecture reads the region in a single command."""
        tile = layout.inner_params.get("tile")
        if not tile:
            return [(tuple(origin), tuple(extents))]
        steps = [range(o, o + e, t)
                 for o, e, t in zip(origin, extents, tile)]
        units = []
        for cell in itertools.product(*steps):
            units.append((cell, tuple(
                min(t, o + e - c)
                for c, o, e, t in zip(cell, origin, extents, tile))))
        return units

    def _read_units(self, layout: ClusterLayout, device: int,
                    store_key: str, origin, extents, ready: float,
                    functional: bool):
        """Timed per-unit reads of one region on one device; returns
        ``(unit_origin, unit_extents, result)`` triples."""
        handle = self.pool.handle(device)
        out = []
        for uorigin, uextents in self._region_units(layout, origin,
                                                    extents):
            start = handle.window.earliest(ready)
            res = handle.system.read_tile(
                store_key, uorigin, uextents, start_time=start,
                with_data=functional)
            handle.window.complete(res.end_time)
            self.pool.note_io(device, res)
            out.append((uorigin, uextents, res))
        return out

    def _group_members(self, layout: ClusterLayout, group: int):
        """Data extents + parity extent of one group (duck-typed)."""
        parity = layout.parity[group]
        members: List[object] = [layout.extents[i] for i in parity.members]
        members.append(parity)
        return members

    def _degraded_read(self, layout: ClusterLayout, target, lorigin,
                       lextents, earliest: float, functional: bool):
        """Reconstruct ``target``'s sub-region by XOR of the surviving
        group members (zero-padded: shorter members contribute zeros).

        Returns ``(end_time, payload_or_None)``.
        """
        group = target.group
        if group < 0 or group >= len(layout.parity):
            raise DegradedReadError(
                f"{layout.dataset} extent {target.index}", earliest,
                detail="device dead and no cross-device parity")
        lo, hi = int(lorigin[0]), int(lorigin[0]) + int(lextents[0])
        rest_origin = tuple(int(o) for o in lorigin[1:])
        rest_extents = tuple(int(e) for e in lextents[1:])
        elem = layout.element_size
        acc = (np.zeros(tuple(lextents) + (elem,), dtype=np.uint8)
               if functional else None)
        completions: List[float] = []
        for member in self._group_members(layout, group):
            if member is target:
                continue
            if self.pool.is_dead(member.device):
                raise DegradedReadError(
                    f"{layout.dataset} extent {target.index}", earliest,
                    detail=f"second device d{member.device} dead in parity "
                           f"group {group}")
            clip_hi = min(hi, member.rows)
            if clip_hi <= lo:
                continue
            region_origin = (lo,) + rest_origin
            reads = self._read_units(
                layout, member.device, member.store_key, region_origin,
                (clip_hi - lo,) + rest_extents, earliest, functional)
            for uorigin, uextents, res in reads:
                completions.append(res.end_time)
                if acc is not None and res.data is not None:
                    slicer = tuple(
                        slice(uo - ro, uo - ro + ue) for uo, ro, ue in
                        zip(uorigin, region_origin, uextents))
                    acc[slicer] ^= res.data
        self.pool.note(target.device, "degraded_reads")
        self._count("degraded_reads")
        end = max(completions, default=earliest)
        self._instant(end, "degraded_read", dataset=layout.dataset,
                      extent=target.index, device=target.device)
        payload = (self._bytes_to_elements(acc, elem)
                   if acc is not None else None)
        return end, payload

    def _rebuild_target_device(self, layout: ClusterLayout,
                               target) -> int:
        """Pick the live device to rebuild onto: inside the layout's
        placement set, not hosting another member of the same group,
        fewest extents overall, lowest id."""
        group_devices = set()
        if 0 <= target.group < len(layout.parity):
            group_devices = {member.device for member in
                             self._group_members(layout, target.group)
                             if member is not target}
        population: Dict[int, int] = {d: 0 for d in self.pool.live_devices()}
        for other in self.layouts.values():
            for extent in other.extents:
                if extent.device in population:
                    population[extent.device] += 1
            for parity in other.parity:
                if parity.device in population:
                    population[parity.device] += 1
        candidates = [d for d in layout.devices
                      if d in population and d not in group_devices]
        if not candidates:
            candidates = [d for d in layout.devices if d in population]
        if not candidates:
            raise DegradedReadError(
                f"{layout.dataset} extent {target.index}", 0.0,
                detail="no live device to rebuild onto")
        return min(candidates, key=lambda d: (population[d], d))

    def _ensure_alive(self, layout: ClusterLayout, target,
                      now: float) -> float:
        """Rebuild ``target`` onto a live device if its home is dead
        (rebuild-on-first-touch). Returns the time the extent is
        usable — ``now`` when it was never lost."""
        self.pool.observe(now)
        if not self.pool.is_dead(target.device):
            return now
        rank_dims = (target.rows,) + layout.dims[1:]
        origin = tuple(0 for _ in rank_dims)
        read_end, payload = self._degraded_read(
            layout, target, origin, rank_dims, now, self.store_data)
        new_device = self._rebuild_target_device(layout, target)
        tag = (f"p{target.group}" if isinstance(target, ParityExtent)
               else f"e{target.index}")
        generation = target.generation + 1
        new_key = (f"{layout.dataset}#l{layout.ordinal}{tag}"
                   f".g{generation}")
        handle = self.pool.handle(new_device)
        start = handle.window.earliest(read_end)
        res = handle.system.ingest(
            new_key, rank_dims, layout.element_size, data=payload,
            start_time=start, **layout.inner_params)
        handle.window.complete(res.end_time)
        self.pool.note_io(new_device, res)
        self.pool.note(new_device, "rebuilds")
        self.pool.note(new_device, "extents")
        self._count("rebuilds")
        self._instant(res.end_time, "rebuild_extent",
                      dataset=layout.dataset, extent=target.index,
                      source=target.device, device=new_device)
        target.device = new_device
        target.store_key = new_key
        target.generation = generation
        return res.end_time

    def migrate_extent(self, layout: ClusterLayout, extent,
                       target_device: int, now: float) -> float:
        """Move one extent to ``target_device`` under live traffic: a
        timed full-extent read on the source, a timed ingest on the
        target, then the map flips. Returns the completion time."""
        source = extent.device
        if self.pool.is_dead(source):
            return self._ensure_alive(layout, extent, now)
        if target_device == source:
            raise ValueError("migration target is the extent's home")
        if self.pool.is_dead(target_device):
            raise ValueError(f"migration target d{target_device} is dead")
        if target_device not in layout.devices:
            raise ValueError(
                f"d{target_device} outside the dataset's placement set "
                f"{layout.devices}")
        if 0 <= extent.group < len(layout.parity):
            occupied = {member.device for member in
                        self._group_members(layout, extent.group)
                        if member is not extent}
            if target_device in occupied:
                raise ValueError(
                    f"d{target_device} already hosts a member of parity "
                    f"group {extent.group}")
        rank_dims = (extent.rows,) + layout.dims[1:]
        origin = tuple(0 for _ in rank_dims)
        elem = layout.element_size
        buf = (np.zeros(rank_dims + (elem,), dtype=np.uint8)
               if self.store_data else None)
        reads = self._read_units(layout, source, extent.store_key,
                                 origin, rank_dims, now, self.store_data)
        read_end = now
        for uorigin, uextents, res in reads:
            read_end = max(read_end, res.end_time)
            if buf is not None and res.data is not None:
                slicer = tuple(slice(uo, uo + ue)
                               for uo, ue in zip(uorigin, uextents))
                buf[slicer] = res.data
        payload = (self._bytes_to_elements(buf, elem)
                   if buf is not None else None)
        tag = (f"p{extent.group}" if isinstance(extent, ParityExtent)
               else f"e{extent.index}")
        generation = extent.generation + 1
        new_key = f"{layout.dataset}#l{layout.ordinal}{tag}.g{generation}"
        dst_handle = self.pool.handle(target_device)
        start = dst_handle.window.earliest(read_end)
        res = dst_handle.system.ingest(
            new_key, rank_dims, layout.element_size, data=payload,
            start_time=start, **layout.inner_params)
        dst_handle.window.complete(res.end_time)
        self.pool.note_io(target_device, res)
        self.pool.note(source, "migrations_out")
        self.pool.note(target_device, "migrations_in")
        self.pool.note(target_device, "extents")
        self._count("migrations")
        self._instant(res.end_time, "migrate_extent",
                      dataset=layout.dataset, extent=extent.index,
                      source=source, device=target_device)
        extent.device = target_device
        extent.store_key = new_key
        extent.generation = generation
        return res.end_time

    def _maybe_rebalance(self, now: float) -> None:
        policy = self.rebalance
        if policy is None or self._ops_since_check < policy.check_interval:
            return
        self._ops_since_check = 0
        live = self.pool.live_devices()
        if len(live) < 2:
            return
        device_heat: Dict[int, float] = {d: 0.0 for d in live}
        hottest: Dict[int, Tuple[float, ClusterLayout, Extent]] = {}
        for layout in self.layouts.values():
            for extent in layout.extents:
                if extent.device not in device_heat:
                    continue
                value = self.heat.get((layout.ordinal, extent.index), 0.0)
                device_heat[extent.device] += value
                best = hottest.get(extent.device)
                if best is None or value > best[0]:
                    hottest[extent.device] = (value, layout, extent)
        hot = max(live, key=lambda d: (device_heat[d], -d))
        cold = min(live, key=lambda d: (device_heat[d], d))
        if (hot != cold
                and device_heat[hot] >= policy.min_heat
                and device_heat[hot] >= policy.ratio * device_heat[cold]
                and hot in hottest):
            _, layout, extent = hottest[hot]
            movable = (cold in layout.devices
                       and not (0 <= extent.group < len(layout.parity)
                                and cold in {m.device for m in
                                             self._group_members(
                                                 layout, extent.group)
                                             if m is not extent}))
            if movable:
                self.migrate_extent(layout, extent, cold, now)
        for key in self.heat:
            self.heat[key] *= policy.decay

    # ------------------------------------------------------------------
    # observability and lifecycle
    # ------------------------------------------------------------------
    def set_trace(self, recorder) -> None:
        from repro.runtime.trace import ScopedTraceRecorder
        if recorder is not None and self.pool.workers is not None:
            raise RuntimeError(
                "cannot attach a trace recorder after parallel workers "
                "spawned (device state lives in the worker processes)")
        self.trace = recorder
        for handle in self.pool.devices:
            scoped = (ScopedTraceRecorder(recorder,
                                          f"d{handle.device_id}:")
                      if recorder is not None else None)
            handle.system.set_trace(scoped)

    def set_metrics(self, registry) -> None:
        from repro.obs.metrics import ScopedMetrics
        if registry is not None and self.pool.workers is not None:
            raise RuntimeError(
                "cannot attach a metrics registry after parallel workers "
                "spawned (device state lives in the worker processes)")
        self.metrics = registry
        for handle in self.pool.devices:
            scoped = (ScopedMetrics(registry, f"d{handle.device_id}.")
                      if registry is not None else None)
            handle.system.set_metrics(scoped)

    def fault_counters(self) -> Optional[Dict[str, int]]:
        merged = self.pool.fault_counters()
        cluster = dict(self.stats.counters)
        if merged is None and not cluster and not self.pool.has_kill_plan:
            return None
        merged = dict(merged or {})
        for name, value in cluster.items():
            merged[f"cluster_{name}"] = merged.get(f"cluster_{name}", 0) \
                + value
        return merged

    def device_report(self) -> Dict[str, Dict[str, object]]:
        report = self.pool.device_report()
        for layout in self.layouts.values():
            for extent in layout.extents:
                entry = report.get(f"d{extent.device}")
                if entry is not None:
                    entry["extents_resident"] = \
                        int(entry.get("extents_resident", 0)) + 1
            for parity in layout.parity:
                entry = report.get(f"d{parity.device}")
                if entry is not None:
                    entry["extents_resident"] = \
                        int(entry.get("extents_resident", 0)) + 1
        return report

    def reset_time(self) -> None:
        self.pool.reset_time()
