"""Unit tests for HostTierCache: byte budget, dirty set, counters."""

import pytest

from repro.cache import CacheConfig, HostTierCache
from repro.cache.tier import COUNTER_KEYS


def make_tier(**kwargs):
    kwargs.setdefault("capacity_bytes", 4096)
    return HostTierCache(CacheConfig(**kwargs))


class TestLookupAndInsert:
    def test_miss_then_hit(self):
        tier = make_tier()
        assert tier.lookup("k") is None
        tier.insert("k", 100, 0.0)
        entry = tier.lookup("k")
        assert entry is not None and entry.nbytes == 100
        assert tier.counters["misses"] == 1
        assert tier.counters["hits"] == 1

    def test_contains_and_get_do_not_count(self):
        tier = make_tier()
        tier.insert("k", 100, 0.0)
        assert tier.contains("k")
        assert tier.get("k") is not None
        assert not tier.contains("other")
        assert tier.counters["hits"] == 0
        assert tier.counters["misses"] == 0

    def test_refresh_in_place_adjusts_bytes(self):
        tier = make_tier()
        tier.insert("k", 100, 0.0)
        tier.insert("k", 300, 0.0)
        assert tier.total_bytes == 300
        assert tier.counters["insertions"] == 1


class TestEviction:
    def test_budget_enforced_in_lru_order(self):
        tier = make_tier(capacity_bytes=250)
        tier.insert("a", 100, 0.0)
        tier.insert("b", 100, 0.0)
        tier.lookup("a")  # refresh: b is now coldest
        tier.insert("c", 100, 0.0)
        assert tier.contains("a") and tier.contains("c")
        assert not tier.contains("b")
        assert tier.counters["evictions"] == 1
        assert tier.total_bytes <= 250

    def test_oversized_insert_evicts_everything_needed(self):
        tier = make_tier(capacity_bytes=250)
        for key in "abc":
            tier.insert(key, 100, 0.0)
        assert len(tier.entries) == 2
        tier.insert("huge", 240, 0.0)
        assert tier.contains("huge")
        assert len(tier.entries) == 1

    def test_admission_rejections_counted(self):
        tier = make_tier(policy="admission")
        tier.insert("one-touch", 100, 0.0)
        assert not tier.contains("one-touch")
        assert tier.counters["rejected"] == 1
        tier.insert("one-touch", 100, 0.0)  # second touch admits
        assert tier.contains("one-touch")

    def test_dirty_insert_bypasses_admission(self):
        """Regression: a write-back buffer insert is never subject to
        the doorkeeper — rejecting it would silently drop the write."""
        tier = make_tier(policy="admission", write_back=True)
        tier.insert("first-touch-write", 100, 0.0, dirty=True)
        assert tier.contains("first-touch-write")
        assert tier.get("first-touch-write").dirty
        assert tier.counters["rejected"] == 0

    def test_invalidate_drops_without_flush(self):
        flushed = []
        tier = make_tier(write_back=True)
        tier.flush_fn = lambda entry, now: flushed.append(entry.key) or now
        tier.insert("k", 100, 0.0, dirty=True)
        tier.invalidate("k")
        assert not tier.contains("k")
        assert flushed == []
        assert tier.counters["invalidations"] == 1
        assert tier.dirty_count == 0


class TestWriteBack:
    def test_dirty_bound_flushes_oldest_first(self):
        flushed = []
        tier = make_tier(write_back=True, dirty_max=2)
        tier.flush_fn = lambda entry, now: flushed.append(entry.key) or now
        for key in "abc":
            tier.insert(key, 10, 0.0, dirty=True)
        assert flushed == ["a"]
        assert tier.dirty_count == 2
        assert tier.counters["writebacks"] == 1
        # flushed entries stay resident, just clean
        assert tier.contains("a") and not tier.get("a").dirty

    def test_eviction_flushes_dirty_victim(self):
        flushed = []
        tier = make_tier(capacity_bytes=150, write_back=True)
        tier.flush_fn = lambda entry, now: flushed.append(entry.key) or now
        tier.insert("a", 100, 0.0, dirty=True)
        tier.insert("b", 100, 0.0)
        assert flushed == ["a"]
        assert not tier.contains("a")

    def test_flush_all_is_a_fence(self):
        tier = make_tier(write_back=True, dirty_max=16)
        tier.flush_fn = lambda entry, now: now + 1.0
        for key in "abcd":
            tier.insert(key, 10, 0.0, dirty=True)
        end = tier.flush_all(5.0)
        assert end == 9.0  # four serialized flushes
        assert tier.dirty_count == 0
        assert tier.counters["writebacks"] == 4
        assert tier.flush_all(end) == end  # idempotent

    def test_flush_without_callback_raises(self):
        tier = make_tier(write_back=True)
        tier.insert("k", 10, 0.0, dirty=True)
        with pytest.raises(RuntimeError):
            tier.flush_entry("k", 0.0)


class TestPrefetchAccounting:
    def test_prefetched_hit_counts_once(self):
        tier = make_tier()
        tier.insert("k", 100, 0.0, prefetched=True)
        assert tier.counters["prefetch_issued"] == 1
        tier.lookup("k")
        tier.lookup("k")
        assert tier.counters["prefetch_hits"] == 1  # first demand hit only
        assert tier.report()["prefetch_accuracy"] == 1.0


class TestGroups:
    def test_group_keys_track_residency(self):
        tier = make_tier(capacity_bytes=250)
        tier.insert("a", 100, 0.0, group="g")
        tier.insert("b", 100, 0.0, group="g")
        assert sorted(tier.group_keys("g")) == ["a", "b"]
        tier.insert("c", 100, 0.0)  # evicts a
        assert tier.group_keys("g") == ["b"]
        tier.invalidate("b")
        assert tier.group_keys("g") == []


class TestReport:
    def test_report_carries_all_counters(self):
        tier = make_tier()
        report = tier.report()
        for key in COUNTER_KEYS:
            assert key in report
        assert report["policy"] == "lru"
        assert report["capacity_bytes"] == 4096
        assert report["write_back"] is False

    def test_hit_rate(self):
        tier = make_tier()
        tier.lookup("k")
        tier.insert("k", 10, 0.0)
        tier.lookup("k")
        assert tier.report()["hit_rate"] == 0.5

    def test_counters_snapshot_is_a_copy(self):
        tier = make_tier()
        snap = tier.counters_snapshot()
        tier.lookup("k")
        assert snap["misses"] == 0
        assert tier.counters["misses"] == 1
