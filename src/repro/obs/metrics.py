"""Deterministic metrics registry: Counter / Gauge / Histogram.

The registry is the numeric side of the observability spine: components
record *model-time* durations and counts into it the same way they
record spans into a :class:`~repro.runtime.trace.TraceRecorder` — via
an optional attribute that defaults to ``None``, so an absent registry
leaves every timed path bit-identical. Nothing in this module reads a
wall clock; two identical runs produce byte-identical snapshots.

Histograms use fixed log-spaced bucket boundaries (quarter-decade steps
from 100 ns to 10 s by default) so latency distributions from different
runs and systems are directly comparable.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "ScopedMetrics", "DEFAULT_LATENCY_BUCKETS"]

#: quarter-decade log-spaced upper bounds, 1e-7 s .. 10 s (an implicit
#: +Inf bucket catches anything slower)
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** (exponent / 4.0) for exponent in range(-28, 5))


def _bound_label(bound: float) -> str:
    """Stable short label for a bucket upper bound."""
    return f"{bound:.4g}"


class Counter:
    """A monotonically increasing count (ints or model-time seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram over non-negative samples.

    ``bounds`` are inclusive upper edges; samples above the last bound
    land in the implicit +Inf bucket. Bucket counts are stored
    per-bucket (not cumulative); :meth:`cumulative` derives the
    Prometheus-style running totals.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "total", "count")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        if index >= len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate.

        Walks the cumulative counts to the bucket holding the ``q``-th
        sample and interpolates the sample's position inside it —
        geometrically for log-spaced buckets (both edges positive),
        linearly when the bucket touches zero. The estimate is within
        one bucket width of the exact sample quantile by construction;
        samples in the +Inf overflow bucket are reported at the last
        finite bound (the histogram cannot know more).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile fraction must be in [0, 1]")
        if self.count == 0:
            return 0.0
        # nearest-rank target (1-based), matching the deterministic
        # percentile() used on raw sample lists
        rank = max(1, min(self.count, round(q * self.count)))
        running = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if running + count >= rank:
                hi = self.bounds[index]
                lo = self.bounds[index - 1] if index > 0 else 0.0
                position = (rank - running) / count
                if lo > 0.0:
                    return lo * (hi / lo) ** position
                return lo + (hi - lo) * position
            running += count
        return self.bounds[-1]

    def cumulative(self) -> List[Tuple[str, int]]:
        """(le-label, running count) pairs, ending with ``+Inf``."""
        running = 0
        out: List[Tuple[str, int]] = []
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((_bound_label(bound), running))
        out.append(("+Inf", running + self.overflow))
        return out

    def nonzero_buckets(self) -> Dict[str, int]:
        """Per-bucket counts, zero buckets omitted (compact snapshots)."""
        out = {_bound_label(b): c
               for b, c in zip(self.bounds, self.counts) if c}
        if self.overflow:
            out["+Inf"] = self.overflow
        return out


class MetricsRegistry:
    """Named metric store with get-or-create accessors.

    Components call the :meth:`count`/:meth:`observe` conveniences at
    each instrumentation point; names follow a ``layer.event`` scheme
    (``host.copy``, ``link.transfer``, ``flash.nand_read``,
    ``sched.queue_wait`` ...). Histograms record model-time seconds.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def _check_free(self, name: str, own: Dict[str, object]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with another type")

    # ------------------------------------------------------------------
    # recording conveniences (the component-side API)
    # ------------------------------------------------------------------
    def count(self, name: str, amount=1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def timeline_observer(self) -> Callable[[str, float, float], None]:
        """Observer for :class:`~repro.sim.resources.Timeline` hooks:
        accumulates per-resource busy seconds and reservation counts."""
        def observe(name: str, start: float, end: float) -> None:
            self.count(f"timeline.{name}.busy_seconds", end - start)
            self.count(f"timeline.{name}.reservations")
        return observe

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain sorted dict of everything recorded (JSON-stable)."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {
                name: {
                    "count": hist.count,
                    "sum": hist.total,
                    "mean": hist.mean,
                    "p50": hist.quantile(0.50),
                    "p99": hist.quantile(0.99),
                    "buckets": hist.nonzero_buckets(),
                }
                for name, hist in sorted(self._histograms.items())
            },
        }

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format (no timestamps)."""
        lines: List[str] = []
        for name in sorted(self._counters):
            metric = _sanitize(f"{prefix}_{name}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(self._counters[name].value)}")
        for name in sorted(self._gauges):
            metric = _sanitize(f"{prefix}_{name}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(self._gauges[name].value)}")
        for name, hist in sorted(self._histograms.items()):
            metric = _sanitize(f"{prefix}_{name}")
            lines.append(f"# TYPE {metric} histogram")
            for label, running in hist.cumulative():
                lines.append(f'{metric}_bucket{{le="{label}"}} {running}')
            lines.append(f"{metric}_sum {_format_value(hist.total)}")
            lines.append(f"{metric}_count {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class ScopedMetrics:
    """A device-scoped view of a shared :class:`MetricsRegistry`.

    A :class:`~repro.cluster.DevicePool` hands one of these to each
    member system so every metric lands in the shared registry with the
    device label prefixed to the name (``d0.flash.nand_read``,
    ``d2.link.transfer``) — the per-device attribution the report
    layer's cluster section reads back out.
    """

    def __init__(self, parent: MetricsRegistry, prefix: str) -> None:
        self.parent = parent
        self.prefix = prefix

    def counter(self, name: str) -> Counter:
        return self.parent.counter(self.prefix + name)

    def gauge(self, name: str) -> Gauge:
        return self.parent.gauge(self.prefix + name)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self.parent.histogram(self.prefix + name, bounds)

    def count(self, name: str, amount=1) -> None:
        self.parent.count(self.prefix + name, amount)

    def observe(self, name: str, value: float) -> None:
        self.parent.observe(self.prefix + name, value)

    def set_gauge(self, name: str, value: float) -> None:
        self.parent.set_gauge(self.prefix + name, value)

    def timeline_observer(self) -> Callable[[str, float, float], None]:
        prefix = self.prefix

        def observe(name: str, start: float, end: float) -> None:
            self.parent.count(
                f"timeline.{prefix}{name}.busy_seconds", end - start)
            self.parent.count(f"timeline.{prefix}{name}.reservations")
        return observe


def _sanitize(name: str) -> str:
    out = []
    for char in name:
        out.append(char if char.isalnum() or char == "_" else "_")
    return "".join(out)


def _format_value(value) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


# typing helper for callers that accept an optional registry
OptionalRegistry = Optional[MetricsRegistry]
