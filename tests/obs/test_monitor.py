"""Monitor gates: non-perturbation, two-run byte identity, windowed
exact-sum attribution, trace replay, and the CLI scenario shape."""

from __future__ import annotations

import pytest

from repro.analysis.loadline_sweep import arrival_process, default_workload
from repro.cache.config import CacheConfig
from repro.nvm.profiles import TINY_TEST
from repro.obs.monitor import (Monitor, format_monitor, monitor_csv,
                               monitor_json, monitor_prometheus)
from repro.obs.report import SYSTEM_FACTORIES
from repro.obs.slo import SloPolicy
from repro.runtime.trace import TraceRecorder
from repro.traffic.injector import OpenLoopInjector, TrafficStream

SYSTEMS = ("baseline", "software-nds", "hardware-nds", "software-oracle")

HORIZON = 0.02
RATE = 3000.0


def run_monitored(system_name: str = "software-nds", rate: float = RATE,
                  horizon: float = HORIZON, windows: int = 8,
                  slo: SloPolicy | None = None,
                  cache: CacheConfig | None = None, devices: int = 1,
                  seed: int = 97, trace: TraceRecorder | None = None,
                  monitor: Monitor | None = None):
    """One small monitored MMPP run; returns (monitor, trace, result)."""
    kwargs = {}
    if devices > 1:
        kwargs["devices"] = devices
    if cache is not None:
        kwargs["cache"] = cache
    system = SYSTEM_FACTORIES[system_name](TINY_TEST, **kwargs)
    workload = default_workload(seed=seed)
    if system_name == "software-oracle":
        for ds in workload.datasets():
            system.ingest(ds.name, ds.dims, ds.element_size,
                          tile=(1, workload.embedding_dim))
    else:
        for ds in workload.datasets():
            system.ingest(ds.name, ds.dims, ds.element_size)
    system.reset_time()
    system._reset_runtime()
    if monitor is None:
        monitor = Monitor(windows=windows, slo=slo, horizon=horizon)
    stream = TrafficStream("serve", arrival_process("mmpp", rate, seed),
                           workload.request_factory(), admission_queue=64)
    injector = OpenLoopInjector(system, [stream], horizon=horizon,
                                trace=trace, marks=windows if trace else 0,
                                monitor=monitor)
    result = injector.run()
    return monitor, trace, result


@pytest.mark.parametrize("system_name", SYSTEMS)
def test_two_runs_are_byte_identical(system_name):
    payloads = []
    for _ in range(2):
        trace = TraceRecorder()
        monitor, trace, _ = run_monitored(
            system_name, slo=SloPolicy(latency_target=500e-6),
            trace=trace)
        payloads.append(monitor_json(monitor.report(trace=trace)))
    assert payloads[0] == payloads[1]


@pytest.mark.parametrize("system_name", SYSTEMS)
def test_monitor_does_not_perturb_timing(system_name):
    """Every timed float of a monitored run must equal the unmonitored
    run bit for bit — the monitor is an observer, not a participant."""
    def timings(with_monitor: bool):
        monitor = (Monitor(windows=8, horizon=HORIZON)
                   if with_monitor else None)
        _, _, result = run_monitored(system_name, monitor=monitor)
        report = result.streams["serve"]
        return ([lat.hex() for lat in report.latencies]
                + [result.makespan.hex()])
    assert timings(False) == timings(True)


def test_series_shapes_and_counts():
    monitor, _, result = run_monitored(windows=8)
    series = monitor.series()
    for key in ("completed", "offered", "shed", "goodput_rps",
                "backlog_mean", "dirty_bytes", "cache_hit_rate"):
        assert len(series[key]) == 8
    for stat in ("p50", "p99", "mean"):
        assert len(series["latency"][stat]) == 8
    report = result.streams["serve"]
    assert sum(series["offered"]) == report.offered
    assert sum(series["completed"]) == len(report.latencies)
    assert series["streams"]["serve"]["completed"] == series["completed"]


def test_windowed_attribution_sums_exactly():
    """Each window's layer seconds must sum *exactly* (float-equal) to
    its attributed service time, and the grand total must match the
    whole-run critical-path inventory."""
    from repro.obs.critical_path import critical_path

    trace = TraceRecorder()
    monitor, trace, _ = run_monitored(trace=trace)
    attribution = monitor.windowed_attribution(trace)
    for row, total in zip(attribution["layers"],
                          attribution["attributed_seconds"]):
        assert sum(row[key] for key in sorted(row)) == total
    analysis = critical_path(trace)
    whole = sum(op.end - op.start for op in analysis.ops)
    assert sum(attribution["attributed_seconds"]) == pytest.approx(whole)


def test_slo_section_counts_sheds_as_bad():
    monitor, _, result = run_monitored(
        rate=12000.0, slo=SloPolicy(latency_target=200e-6))
    section = monitor.slo_section()
    report = result.streams["serve"]
    shed = report.shed_throttled + report.shed_queue_full
    assert sum(section["total"]) == len(report.latencies) + shed
    assert sum(section["bad"]) >= shed


def test_overload_fires_alert_with_diagnosis():
    trace = TraceRecorder()
    monitor, trace, _ = run_monitored(
        rate=8000.0, slo=SloPolicy(latency_target=300e-6), trace=trace)
    payload = monitor.report(trace=trace)
    alerts = payload["slo"]["alerts"]
    assert alerts, "overload scenario must fire at least one alert"
    diagnoses = payload["diagnoses"]
    assert len(diagnoses) == len(alerts)
    for diagnosis in diagnoses:
        assert diagnosis["summary"].startswith("latency SLO burn")
        assert diagnosis["dominant_stream"] == "serve"
    # alerts are also written into the trace as instant marks
    marks = [m for m in trace.instants() if m.name == "slo_alert"]
    assert len(marks) == len(alerts)


def test_from_trace_replays_alerts():
    trace = TraceRecorder()
    policy = SloPolicy(latency_target=300e-6)
    monitor, trace, _ = run_monitored(rate=8000.0, slo=policy,
                                      trace=trace)
    live = monitor.report(trace=trace)["slo"]["alerts"]
    replay = Monitor.from_trace(trace, windows=monitor.windows,
                                slo=policy, horizon=HORIZON)
    replayed = replay.report()["slo"]["alerts"]
    assert [(a["rule"], a["window"]) for a in live] == \
        [(a["rule"], a["window"]) for a in replayed]


def test_cache_series_and_dirty_bytes():
    cache = CacheConfig(capacity_bytes=50 * 1024, write_back=True)
    monitor, _, _ = run_monitored(cache=cache)
    series = monitor.series()
    assert sum(series["cache"]["hits"]) + \
        sum(series["cache"]["misses"]) > 0
    assert any(v >= 0 for v in series["dirty_bytes"])


def test_device_series_covers_pool_members():
    trace = TraceRecorder()
    monitor, trace, _ = run_monitored(devices=3, trace=trace)
    devices = monitor.device_series(trace)
    assert set(devices["busy_seconds"]) >= {"d0", "d1", "d2"}
    for values in devices["busy_seconds"].values():
        assert len(values) == monitor.windows


def test_window_of_clamps_overflow():
    monitor = Monitor(windows=4, horizon=1.0)
    assert monitor.window_of(0.0) == 0
    assert monitor.window_of(0.26) == 1
    assert monitor.window_of(99.0) == 3  # backlog tail past the horizon
    assert monitor._window_ending_at(0.25) == 0
    assert monitor._window_ending_at(1.0) == 3


def test_monitor_requires_horizon():
    monitor = Monitor(windows=4)
    with pytest.raises(ValueError):
        monitor.series()
    with pytest.raises(ValueError):
        monitor.attach(system=None)
    with pytest.raises(ValueError):
        Monitor(windows=0)
    with pytest.raises(ValueError):
        Monitor(windows=4, horizon=-1.0)


def test_renderings_are_consistent():
    trace = TraceRecorder()
    monitor, trace, _ = run_monitored(
        rate=8000.0, slo=SloPolicy(latency_target=300e-6), trace=trace)
    payload = monitor.report(trace=trace)
    text = format_monitor(payload)
    assert "goodput rps" in text and "slo burn" in text
    csv = monitor_csv(payload)
    assert csv.startswith("window,window_start_s,series,value\n")
    assert "goodput_rps" in csv and "burn" in csv
    prom = monitor_prometheus(payload)
    assert "# TYPE repro_monitor_goodput_rps gauge" in prom
    # timestamps are the window right edges in model-time milliseconds
    first_sample = [line for line in prom.splitlines()
                    if line.startswith("repro_monitor_goodput_rps ")][0]
    assert first_sample.split()[-1] == str(
        int(round(monitor.window_seconds * 1000)))
