"""Tests for statistics accounting."""

import pytest

from repro.sim import BandwidthSample, StatSet, effective_bandwidth


class TestEffectiveBandwidth:
    def test_basic(self):
        assert effective_bandwidth(1000, 2.0) == 500.0

    def test_zero_interval(self):
        assert effective_bandwidth(1000, 0.0) == 0.0

    def test_negative_interval(self):
        assert effective_bandwidth(1000, -1.0) == 0.0


class TestBandwidthSample:
    def test_units(self):
        sample = BandwidthSample(num_bytes=2**30, elapsed_seconds=1.0)
        assert sample.bytes_per_second == 2**30
        assert sample.gib_per_second == pytest.approx(1.0)
        assert sample.mib_per_second == pytest.approx(1024.0)


class TestStatSet:
    def test_counting(self):
        stats = StatSet()
        stats.count("pages")
        stats.count("pages", 4)
        assert stats.get_count("pages") == 5
        assert stats.get_count("missing") == 0

    def test_time_accumulation(self):
        stats = StatSet()
        stats.add_time("cpu", 1.5)
        stats.add_time("cpu", 0.5)
        assert stats.get_time("cpu") == pytest.approx(2.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            StatSet().add_time("cpu", -1.0)

    def test_merge(self):
        a = StatSet()
        a.count("x", 2)
        a.add_time("t", 1.0)
        b = StatSet()
        b.count("x", 3)
        b.count("y")
        b.add_time("t", 2.0)
        a.merge(b)
        assert a.get_count("x") == 5
        assert a.get_count("y") == 1
        assert a.get_time("t") == pytest.approx(3.0)

    def test_merged_classmethod(self):
        parts = []
        for i in range(3):
            s = StatSet()
            s.count("n", i)
            parts.append(s)
        assert StatSet.merged(parts).get_count("n") == 3

    def test_as_dict_suffixes_times(self):
        stats = StatSet()
        stats.count("ios", 7)
        stats.add_time("link", 0.25)
        flat = stats.as_dict()
        assert flat["ios"] == 7
        assert flat["link_s"] == 0.25
