"""Host CPU cost model.

Two Timeline resources: an *issue* line (the core driving the I/O
software stack — every request costs ``per_io_cost`` seconds of it,
[P1]) and a pool of *copy* cores doing marshalling/assembly memcpys.
The paper's host is an 8-core Ryzen 3700X; the default dedicates one
core to each role, matching the single-threaded assembly loop of the
software NDS prototype (ablations can raise ``copy_cores``).
"""

from __future__ import annotations

from repro.host.memory import MemoryModel
from repro.sim.resources import MultiTimeline, Timeline
from repro.sim.stats import StatSet

__all__ = ["HostCpu"]


class HostCpu:
    """Host processor resources and cost accounting."""

    def __init__(self, per_io_cost: float = 4e-6,
                 memory: MemoryModel = MemoryModel(),
                 copy_cores: int = 1,
                 stl_lookup_cost: float = 2e-6) -> None:
        if per_io_cost < 0:
            raise ValueError("per_io_cost must be non-negative")
        self.per_io_cost = per_io_cost
        self.memory = memory
        self.issue_line = Timeline("host_issue")
        self.copy_lines = MultiTimeline(copy_cores, "host_copy")
        #: per-request cost of host-side STL work (B-tree walk + Eq. 5
        #: translation) for the software NDS; calibrated against the
        #: 41 µs worst-case adder of §7.3 together with LightNVM I/O costs.
        self.stl_lookup_cost = stl_lookup_cost
        self.stats = StatSet()
        #: optional per-layer span recorder (set via the owning
        #: system's ``set_trace``)
        self.trace = None
        #: optional metrics registry (set via ``set_metrics``)
        self.metrics = None

    # ------------------------------------------------------------------
    def issue_io(self, earliest_start: float) -> float:
        """Charge one request's software-stack cost; returns finish time."""
        start, end = self.issue_line.reserve(earliest_start, self.per_io_cost)
        self.stats.count("host_ios")
        self.stats.add_time("host_issue", self.per_io_cost)
        if self.trace is not None:
            self.trace.span("host_issue", start, end, name="issue_io")
        if self.metrics is not None:
            self.metrics.observe("host.issue", end - start)
        return end

    def run_issue_work(self, earliest_start: float, seconds: float,
                       label: str = "issue_work") -> float:
        """Charge arbitrary work to the issue core (e.g. host-side STL);
        ``label`` names the span in traces."""
        start, end = self.issue_line.reserve(earliest_start, seconds)
        self.stats.add_time("host_issue", seconds)
        if self.trace is not None:
            self.trace.span("host_issue", start, end, name=label)
        if self.metrics is not None:
            self.metrics.observe(f"host.{label}", end - start)
        return end

    def copy(self, num_bytes: int, earliest_start: float,
             chunk_bytes: int = 0, label: str = "host_copy") -> float:
        """Charge a (possibly chunked) marshalling copy; returns finish.
        ``label`` names the trace span (the DRAM cache tier uses
        ``"cache_copy"`` so hit service attributes to its own layer)."""
        duration = self.memory.copy_time(num_bytes, chunk_bytes)
        start, end, _core = self.copy_lines.reserve(earliest_start, duration)
        self.stats.count("host_copies")
        self.stats.count("host_copied_bytes", num_bytes)
        self.stats.add_time("host_copy", duration)
        if self.trace is not None:
            self.trace.span("host_copy", start, end, name=label,
                            bytes=num_bytes)
        if self.metrics is not None:
            self.metrics.observe("host.copy", duration)
            self.metrics.count("host.copy.bytes", num_bytes)
        return end

    def copy_duration(self, num_bytes: int, chunk_bytes: int = 0) -> float:
        return self.memory.copy_time(num_bytes, chunk_bytes)

    def reset_time(self) -> None:
        self.issue_line.reset()
        self.copy_lines.reset()
