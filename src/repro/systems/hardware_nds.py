"""The hardware-assisted NDS architecture (paper Fig. 7(c)).

The STL runs inside the device controller (Fig. 8): one NDS/NVMe
extended command per tile crosses the interconnect, the controller
translates it, reads building blocks at full internal bandwidth,
assembles the object in device DRAM, and streams assembled segments to
the host "as soon as a segment reaches the optimal data-exchange volume
for the system interconnect" (§4.4). The host issues exactly one
command and performs **no** marshalling.

Cost calibration (§7.3): a worst-case single-page request pays ~17 µs
over the baseline (command handling + full B-tree walk + one-page
assembly on the ARM cores). Writes pay controller-side disassembly,
the source of the 17 % write-bandwidth penalty of Fig. 9(d).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.nd import (neighbor_regions, region_group, region_key,
                            slices_overlap)
from repro.core.api import bytes_to_array
from repro.core.controller import ControllerTiming, NdsController
from repro.core.errors import FaultError, NdsError
from repro.core.stl import SpaceTranslationLayer
from repro.core.translator import pages_for_region
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultConfig
from repro.host.cpu import HostCpu
from repro.interconnect.link import Link
from repro.nvm.flash import FlashArray
from repro.nvm.profiles import DeviceProfile
from repro.systems.base import StorageSystem, SystemOpResult

__all__ = ["HardwareNdsSystem"]

#: segment size at which assembled data is pushed to the host (§4.4:
#: the optimal data-exchange volume of the interconnect, [P2]'s 2 MB)
DEFAULT_SEGMENT_BYTES = 2 * 2**20


class HardwareNdsSystem(StorageSystem):
    """NDS-compliant SSD: STL + assembly inside the device controller."""

    name = "hardware-nds"

    def __init__(self, profile: DeviceProfile, store_data: bool = False,
                 controller_timing: ControllerTiming = ControllerTiming(),
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 bb_override: Optional[Sequence[int]] = None,
                 cpu: Optional[HostCpu] = None,
                 cipher=None,
                 faults: Optional[FaultConfig] = None,
                 devices: int = 1, pool=None,
                 extents_per_device: int = 1, rebalance=None,
                 cache: Optional[CacheConfig] = None,
                 parallel: int = 0) -> None:
        self.profile = profile
        self.store_data = store_data
        self.segment_bytes = segment_bytes
        self.bb_override = bb_override
        self.page_size = profile.geometry.page_size
        self.cipher = cipher
        if self._init_cluster(
                devices, pool, faults, rebalance, extents_per_device,
                lambda i, f: HardwareNdsSystem(
                    profile, store_data=store_data,
                    controller_timing=controller_timing,
                    segment_bytes=segment_bytes, bb_override=bb_override,
                    cipher=cipher, faults=f, cache=cache),
                parallel=parallel):
            return
        self.flash = FlashArray(profile.geometry, profile.timing,
                                store_data=store_data)
        if faults is not None:
            self.flash.attach_faults(FaultInjector(faults))
        self.stl = SpaceTranslationLayer(self.flash,
                                         gc_threshold=profile.overprovisioning,
                                         parity=faults.parity
                                         if faults is not None else False)
        self.controller = NdsController(controller_timing)
        self.link = Link(profile.link_bandwidth, profile.link_command_overhead)
        self.cpu = cpu if cpu is not None else HostCpu()
        # optional controller AES engine (§5.3.3): decryption rides the
        # assembly path, encryption the disassembly path; the engine is
        # one shared pipeline resource
        from repro.sim.resources import Timeline
        self.cipher_line = Timeline("aes_engine")
        self._spaces: Dict[str, int] = {}
        self._bulk_ingest = False
        self._init_tier(cache)

    def _crypt(self, earliest_start: float, num_bytes: int) -> float:
        """Push bytes through the shared AES engine; returns finish."""
        if self.cipher is None:
            return earliest_start
        start, end = self.cipher_line.reserve(
            earliest_start, self.cipher.crypt_time(num_bytes))
        trace = self.scheduler.trace
        if trace is not None:
            trace.span("aes_engine", start, end, name="crypt",
                       bytes=num_bytes)
        return end

    # ------------------------------------------------------------------
    def _execute_ingest(self, dataset: str, dims: Sequence[int],
                        element_size: int,
                        data: Optional[np.ndarray] = None,
                        start_time: float = 0.0,
                        shard=None) -> SystemOpResult:
        if dataset in self._spaces:
            raise ValueError(f"dataset {dataset!r} already ingested")
        space = self.stl.create_space(
            dims, element_size, bb_override=self.bb_override,
            shard=shard,
            # rank >= 3: 3-D cube blocks over bank-level parallelism
            # (§4.1 Eq. 3/4)
            use_3d_blocks=len(tuple(dims)) >= 3 and self.bb_override is None)
        self._spaces[dataset] = space.space_id
        # bulk load bypasses the DRAM tier: a whole dataset would blow
        # through the byte budget and churn the dirty set for nothing
        self._bulk_ingest = True
        try:
            return self._execute_write(dataset, tuple(0 for _ in dims), dims,
                                       data=data, start_time=start_time)
        finally:
            self._bulk_ingest = False

    # ------------------------------------------------------------------
    def _execute_read(self, dataset: str, origin: Sequence[int],
                      extents: Sequence[int], start_time: float = 0.0,
                      with_data: bool = False,
                      dtype: Optional[np.dtype] = None) -> SystemOpResult:
        space_id = self._space_id(dataset)
        space = self.stl.get_space(space_id)
        accesses = self.stl.plan_region(space_id, origin, extents)
        elem = space.element_size

        tier = self.tier
        hit_pairs = []
        if tier is not None:
            remaining = []
            for access in accesses:
                entry = tier.lookup(region_key(dataset, access))
                if entry is not None:
                    hit_pairs.append((access, entry))
                else:
                    remaining.append(access)
            accesses = remaining

        out = None
        if with_data and self.store_data:
            out = np.zeros(tuple(extents) + (elem,), dtype=np.uint8)

        # DRAM hits never leave the host: one contiguous copy each, and
        # if everything is resident no NVMe command is issued at all.
        end = start_time
        for access, entry in hit_pairs:
            if out is not None and entry.data is not None:
                slicer = tuple(slice(lo, hi) for lo, hi in access.out_slice)
                out[slicer] = entry.data
            region_bytes = access.element_count() * elem
            end = max(end, self.cpu.copy(region_bytes, start_time, 0,
                                         label="cache_copy"))

        fetched = 0
        missed = bool(accesses)
        if tier is None or missed:
            # One extended NVMe command from the host (§5.3.1) covers
            # the regions not resident in the host tier.
            issued = self.cpu.issue_io(start_time)
            cmd_done = self.controller.handle_command(issued)
            pending_bytes = 0
            pending_ready = cmd_done
            end = max(end, cmd_done)
            translate_done = cmd_done
            for access in accesses:
                if tier is not None:
                    # coherence: buffered dirty regions overlapping this
                    # block slice must reach flash before we read it
                    translate_done = self._flush_overlapping(
                        dataset, access, translate_done)
                translate_done = self.controller.translate(
                    translate_done, space.rank, 1)
                block = self.stl.read_block(space_id, access, translate_done,
                                            out=out)
                fetched += block.pages * self.page_size
                region_bytes = access.element_count() * elem
                decrypted = self._crypt(block.completion_time,
                                        block.pages * self.page_size)
                ready = self.controller.assemble(decrypted, region_bytes,
                                                 block.pages)
                pending_bytes += region_bytes
                pending_ready = max(pending_ready, ready)
                while pending_bytes >= self.segment_bytes:
                    transfer = self.link.transfer(self.segment_bytes,
                                                  pending_ready)
                    pending_bytes -= self.segment_bytes
                    end = max(end, transfer.end_time)
            if pending_bytes > 0:
                transfer = self.link.transfer(pending_bytes, pending_ready)
                end = max(end, transfer.end_time)
            if tier is not None:
                # assembled regions land in the host tier once the final
                # segment arrives
                for access in accesses:
                    region_bytes = access.element_count() * elem
                    data = (self.stl.block_region_data(space_id, access)
                            if self.store_data else None)
                    end = tier.insert(
                        region_key(dataset, access), region_bytes, end,
                        payload=(dataset, space_id, access), data=data,
                        group=region_group(dataset, access))
        if tier is not None and missed and tier.config.prefetch:
            # async readahead: speculative commands ride the shared
            # timelines after the demand work but do not hold up this op
            self._prefetch_neighbors(dataset, space_id, space, origin,
                                     extents, end)

        useful = elem
        for extent in extents:
            useful *= extent
        data = None
        if out is not None:
            data = out if dtype is None else bytes_to_array(out, dtype)
        return SystemOpResult(start_time=start_time, end_time=end,
                              useful_bytes=useful, fetched_bytes=fetched,
                              requests=1, data=data)

    # ------------------------------------------------------------------
    def _execute_write(self, dataset: str, origin: Sequence[int],
                       extents: Sequence[int],
                       data: Optional[np.ndarray] = None,
                       start_time: float = 0.0) -> SystemOpResult:
        space_id = self._space_id(dataset)
        space = self.stl.get_space(space_id)
        accesses = self.stl.plan_region(space_id, origin, extents)
        elem = space.element_size

        raw = None
        if data is not None and self.store_data:
            array = np.ascontiguousarray(np.asarray(data))
            if tuple(array.shape) != tuple(extents):
                raise ValueError(
                    f"data shape {array.shape} != extents {tuple(extents)}")
            raw = array.view(np.uint8).reshape(
                tuple(extents) + (array.dtype.itemsize,))

        useful = elem
        for extent in extents:
            useful *= extent

        tier = None if self._bulk_ingest else self.tier
        if tier is not None and tier.config.write_back:
            # write-back: the object never reaches the device now — one
            # host-memory copy per region into the DRAM tier; the NVMe
            # command is paid at eviction, dirty-bound or fence
            end = start_time
            for access in accesses:
                region = None
                if raw is not None:
                    slicer = tuple(slice(lo, hi)
                                   for lo, hi in access.out_slice)
                    region = raw[slicer]
                done = self._absorb_write(dataset, space_id, access, region,
                                          start_time)
                end = max(end, done)
            return SystemOpResult(start_time=start_time, end_time=end,
                                  useful_bytes=useful, fetched_bytes=0,
                                  requests=1)

        issued = self.cpu.issue_io(start_time)
        cmd_done = self.controller.handle_command(issued)

        # The device pulls the source object over the link in saturating
        # segments (the SSD "requests host main memory content in 4 KB
        # pages and breaks them up later", §7.1) — DMA, no host copies.
        arrival_times = self._segment_arrivals(useful, cmd_done)

        sent = 0
        end = cmd_done
        translate_done = cmd_done
        consumed = 0
        for access in accesses:
            region_bytes = access.element_count() * elem
            consumed += region_bytes
            arrival = self._arrival_for(arrival_times, consumed, useful)
            translate_done = self.controller.translate(
                max(translate_done, cmd_done), space.rank, 1)
            pages = len(pages_for_region(space, access.block_slice))
            alloc_done = self.controller.allocate(
                max(translate_done, arrival), pages)
            disassembled = self.controller.assemble(alloc_done, region_bytes,
                                                    pages)
            disassembled = self._crypt(disassembled,
                                       pages * self.page_size)
            region = None
            if raw is not None:
                slicer = tuple(slice(lo, hi) for lo, hi in access.out_slice)
                region = raw[slicer]
            block = self.stl.write_block(space_id, access, disassembled,
                                         region=region)
            sent += pages * self.page_size
            end = max(end, block.completion_time)
            if tier is not None:
                self._note_write_through(dataset, space_id, access)
        return SystemOpResult(start_time=start_time, end_time=end,
                              useful_bytes=useful, fetched_bytes=sent,
                              requests=1)

    # ------------------------------------------------------------------
    # DRAM tier glue (only reached with cache=CacheConfig(...) set)
    # ------------------------------------------------------------------
    def _flush_cache_entry(self, entry, now: float) -> float:
        """Write one buffered dirty region back: a single-region NDS
        write command replayed through the controller path, so a
        deferred flush costs exactly what the write would have."""
        dataset, space_id, access = entry.payload
        space = self.stl.get_space(space_id)
        elem = space.element_size
        region_bytes = access.element_count() * elem
        issued = self.cpu.issue_io(now)
        cmd_done = self.controller.handle_command(issued)
        transfer = self.link.transfer(region_bytes, cmd_done)
        translated = self.controller.translate(cmd_done, space.rank, 1)
        pages = len(pages_for_region(space, access.block_slice))
        alloc_done = self.controller.allocate(
            max(translated, transfer.end_time), pages)
        disassembled = self.controller.assemble(alloc_done, region_bytes,
                                                pages)
        disassembled = self._crypt(disassembled, pages * self.page_size)
        block = self.stl.write_block(space_id, access, disassembled,
                                     region=entry.data)
        return block.completion_time

    def _flush_overlapping(self, dataset: str, access,
                           now: float) -> float:
        """Flush buffered dirty regions overlapping ``access``."""
        tier = self.tier
        for key in tier.group_keys(region_group(dataset, access)):
            entry = tier.get(key)
            if entry is None or not entry.dirty:
                continue
            if slices_overlap(entry.payload[2].block_slice,
                              access.block_slice):
                now = tier.flush_entry(key, now)
        return now

    def _absorb_write(self, dataset: str, space_id: int, access, region,
                      earliest: float) -> float:
        """Write-back: absorb one region into DRAM. The host does no
        marshalling in this architecture, so the copy is contiguous."""
        tier = self.tier
        space = self.stl.get_space(space_id)
        region_bytes = access.element_count() * space.element_size
        done = self.cpu.copy(region_bytes, earliest, 0, label="cache_copy")
        key = region_key(dataset, access)
        # overlapping buffered regions: older dirty data must hit flash
        # first (write order), overlapping clean copies are now stale
        for other in tier.group_keys(region_group(dataset, access)):
            if other == key:
                continue
            entry = tier.get(other)
            if entry is None:
                continue
            if slices_overlap(entry.payload[2].block_slice,
                              access.block_slice):
                if entry.dirty:
                    done = tier.flush_entry(other, done)
                tier.invalidate(other)
        data = None
        if region is not None:
            data = np.ascontiguousarray(region).copy()
        return tier.insert(key, region_bytes, done,
                           payload=(dataset, space_id, access), data=data,
                           dirty=True, group=region_group(dataset, access))

    def _note_write_through(self, dataset: str, space_id: int,
                            access) -> None:
        """Write-through coherence: refresh the exact cached region,
        drop overlapping neighbors (their bytes are now stale)."""
        tier = self.tier
        key = region_key(dataset, access)
        for other in tier.group_keys(region_group(dataset, access)):
            if other == key:
                continue
            entry = tier.get(other)
            if entry is not None and slices_overlap(
                    entry.payload[2].block_slice, access.block_slice):
                tier.invalidate(other)
        entry = tier.get(key)
        if entry is not None and self.store_data:
            entry.data = self.stl.block_region_data(space_id, access)

    def _prefetch_neighbors(self, dataset: str, space_id: int, space,
                            origin: Sequence[int], extents: Sequence[int],
                            start: float) -> None:
        """Fetch forward neighbor regions along the accessed axes into
        the tier via speculative single-region commands (charged on the
        shared timelines, asynchronously)."""
        tier = self.tier
        elem = space.element_size
        for p_origin, p_extents in neighbor_regions(
                space.dims, origin, extents, tier.config.prefetch):
            for access in self.stl.plan_region(space_id, p_origin,
                                               p_extents):
                key = region_key(dataset, access)
                if tier.contains(key):
                    continue
                issued = self.cpu.issue_io(start)
                cmd_done = self.controller.handle_command(issued)
                translated = self.controller.translate(cmd_done,
                                                       space.rank, 1)
                try:
                    block = self.stl.read_block(space_id, access, translated)
                except (NdsError, FaultError):
                    continue  # speculative read; demand path will retry
                region_bytes = access.element_count() * elem
                decrypted = self._crypt(block.completion_time,
                                        block.pages * self.page_size)
                ready = self.controller.assemble(decrypted, region_bytes,
                                                 block.pages)
                transfer = self.link.transfer(region_bytes, ready)
                data = (self.stl.block_region_data(space_id, access)
                        if self.store_data else None)
                tier.insert(key, region_bytes, transfer.end_time,
                            payload=(dataset, space_id, access), data=data,
                            prefetched=True,
                            group=region_group(dataset, access))

    # ------------------------------------------------------------------
    def reset_time(self) -> None:
        if self.cluster is not None:
            self.cluster.reset_time()
            self._reset_runtime()
            return
        self.flash.reset_time()
        self.link.reset_time()
        self.cpu.reset_time()
        self.controller.reset_time()
        self.cipher_line.reset()
        self._reset_runtime()

    # ------------------------------------------------------------------
    def _cluster_align(self, dims: Sequence[int], element_size: int,
                       params: dict) -> int:
        """Extent boundaries land on building-block rows (same quantum
        the controller-resident STL would pick for the whole space)."""
        from repro.core.space import Space
        dims = tuple(int(d) for d in dims)
        space = Space.create(
            -1, dims, int(element_size), self.stl.geometry,
            bb_override=self.bb_override,
            use_3d_blocks=len(dims) >= 3 and self.bb_override is None)
        return int(space.bb[0])

    # ------------------------------------------------------------------
    def _space_id(self, dataset: str) -> int:
        space_id = self._spaces.get(dataset)
        if space_id is None:
            raise KeyError(f"unknown dataset {dataset!r}")
        return space_id

    def _segment_arrivals(self, total_bytes: int,
                          first_start: float) -> List[Tuple[int, float]]:
        """Cumulative-bytes → arrival-time steps for the inbound DMA."""
        arrivals = []
        cumulative = 0
        while cumulative < total_bytes:
            chunk = min(self.segment_bytes, total_bytes - cumulative)
            transfer = self.link.transfer(chunk, first_start)
            cumulative += chunk
            arrivals.append((cumulative, transfer.end_time))
        return arrivals

    @staticmethod
    def _arrival_for(arrivals: List[Tuple[int, float]], needed: int,
                     total: int) -> float:
        for cumulative, time in arrivals:
            if cumulative >= min(needed, total):
                return time
        return arrivals[-1][1] if arrivals else 0.0
