#!/usr/bin/env python3
"""Deterministic fault injection across all four systems.

One scripted fault plan — a corrupted page and an aged device — is
driven through every architecture:

* **NDS systems** (software / hardware): the corrupted unit walks the
  full ECC read-retry ladder, fails, and is *reconstructed* from its
  cross-channel XOR parity group; the read still returns correct bytes
  and the unit is relocated so the next read is clean.
* **Baseline / oracle**: a conventional SSD has no parity group to fall
  back on — the same corruption surfaces as a typed
  ``UncorrectableError`` after the retry ladder.

Everything is keyed on ``--seed``: two runs with the same seed produce
byte-identical trace and metrics JSON (the CI determinism job diffs
them), which is the point — fault schedules you can replay.

Run:  python examples/fault_injection.py [--seed N] [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.analysis.reliability import reliability_sweep
from repro.core.errors import DegradedReadError, UncorrectableError
from repro.faults import FaultConfig, FaultPlan
from repro.nvm import TINY_TEST
from repro.runtime import TraceRecorder
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)

N = 64  # dataset edge (N*N bytes, element_size=1)


def _plan() -> FaultPlan:
    """Corrupt the very first programmed page shortly after ingest."""
    return FaultPlan().corrupt_page(0, 0, 0, 0, at=0.01)


def _config(seed: int, parity: bool) -> FaultConfig:
    return FaultConfig(seed=seed, parity=parity, rber_base=4e-4,
                       initial_wear=9000, plan=_plan())


def run_system(name: str, system, data: np.ndarray,
               trace: TraceRecorder = None) -> dict:
    """Ingest, then read the whole dataset back at t=0.1 (after the
    scripted corruption fires). Returns a JSON-friendly record."""
    if trace is not None:
        system.set_trace(trace)
    system.ingest("d", (N, N), 1, data=data)
    record = {"system": name, "error": None, "match": None}
    try:
        result = system.read_tile("d", (0, 0), (N, N), start_time=0.1,
                                  with_data=True)
        record["match"] = bool(
            np.array_equal(data, result.data.reshape(N, N)))
        record["elapsed_us"] = round(result.elapsed * 1e6, 3)
    except (UncorrectableError, DegradedReadError) as err:
        record["error"] = type(err).__name__
        record["fail_time_us"] = round(err.fail_time * 1e6, 3)
    flash = getattr(system, "flash", None)
    if flash is None:
        flash = system.ssd.flash
    record["fault_counters"] = dict(sorted(flash.faults.counters().items()))
    record["stream_faults"] = system.scheduler.stream_fault_report()
    return record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0xF417)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    args = parser.parse_args()

    data = np.random.default_rng(args.seed).integers(
        0, 256, size=(N, N), dtype=np.uint8).astype(np.uint8)

    trace = TraceRecorder()
    records = [
        run_system("software-nds",
                   SoftwareNdsSystem(TINY_TEST, store_data=True,
                                     faults=_config(args.seed, parity=True)),
                   data, trace=trace),
        run_system("hardware-nds",
                   HardwareNdsSystem(TINY_TEST, store_data=True,
                                     faults=_config(args.seed, parity=True)),
                   data),
        run_system("baseline",
                   BaselineSystem(TINY_TEST, store_data=True,
                                  faults=_config(args.seed, parity=False)),
                   data),
        run_system("oracle",
                   OracleSystem(TINY_TEST, store_data=True,
                                faults=_config(args.seed, parity=False)),
                   data),
    ]

    for record in records:
        outcome = (f"reconstructed, data match={record['match']}"
                   if record["error"] is None
                   else f"typed error {record['error']}")
        print(f"  {record['system']:13s} {outcome}")
        print(f"                counters: {record['fault_counters']}")

    sweep = reliability_sweep(seed=args.seed)
    print("\n== wear sweep (retries / read slowdown) ==")
    for wear, per_system in sweep.items():
        line = "  ".join(
            f"{name}: {vals['retries']:.0f}r {vals['slowdown']:.2f}x"
            for name, vals in per_system.items())
        print(f"  wear {wear:6d}  {line}")

    args.out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = args.out_dir / "fault_injection.trace.json"
    trace_path.write_text(json.dumps(trace.to_chrome(), sort_keys=True))
    metrics_path = args.out_dir / "fault_injection.metrics.json"
    metrics_path.write_text(json.dumps(
        {"seed": args.seed, "systems": records,
         "wear_sweep": {str(k): v for k, v in sweep.items()}},
        sort_keys=True, indent=2))
    retry_spans = sum(1 for span in trace.spans
                      if span.name in ("read_retry", "page_out_retry"))
    print(f"\nwrote {trace_path} ({len(trace.spans)} spans, "
          f"{retry_spans} retry spans) and {metrics_path}")


if __name__ == "__main__":
    main()
