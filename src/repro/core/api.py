"""The NDS application programming interface (§5.1).

Three categories of calls, mirroring the paper:

* **space creation/management** — ``create_space`` (and
  ``delete_space``), which trigger the STL to size building blocks and
  build the translation structures;
* **open/close** — ``open_space`` hands the application's *view* of the
  space to NDS and returns a dynamic handle; ``close_space`` reclaims
  it;
* **read/write** — coordinate + sub-dimensionality addressed data
  movement between application numpy arrays and the device.

Applications work in their own dtype; the API converts to the STL's
element-granular byte representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.errors import SpaceClosedError, ViewVolumeError
from repro.core.space import Space
from repro.core.stl import SpaceTranslationLayer, StlOpResult
from repro.core.views import IdentityView, RegionMap, ReshapeView, View

__all__ = ["NdsHandle", "NdsApi", "array_to_bytes", "bytes_to_array"]


def array_to_bytes(array: np.ndarray) -> np.ndarray:
    """Element-granular uint8 view: shape ``(*array.shape, itemsize)``."""
    contiguous = np.ascontiguousarray(array)
    return contiguous.view(np.uint8).reshape(
        contiguous.shape + (contiguous.dtype.itemsize,))


def bytes_to_array(raw: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Inverse of :func:`array_to_bytes`."""
    dtype = np.dtype(dtype)
    if raw.shape[-1] != dtype.itemsize:
        raise ValueError(
            f"byte axis {raw.shape[-1]} != dtype itemsize {dtype.itemsize}")
    shape = raw.shape[:-1]
    return np.ascontiguousarray(raw).reshape(-1).view(dtype).reshape(shape)


@dataclass
class NdsHandle:
    """A dynamic space ID bound to one application view (§5.3.1:
    "the software system can use the space ID to distinguish between
    different views an application uses for the space")."""

    handle_id: int
    space_id: int
    view: View
    closed: bool = False

    @property
    def dims(self) -> Tuple[int, ...]:
        return self.view.dims


class NdsApi:
    """User-facing front end over one STL instance."""

    def __init__(self, stl: SpaceTranslationLayer) -> None:
        self.stl = stl
        self._handles: Dict[int, NdsHandle] = {}
        self._next_handle = 1

    # ------------------------------------------------------------------
    # space creation / management
    # ------------------------------------------------------------------
    def create_space(self, dims: Sequence[int], element_size: int,
                     bb_override: Optional[Sequence[int]] = None,
                     use_3d_blocks: bool = False) -> int:
        space = self.stl.create_space(dims, element_size,
                                      bb_override=bb_override,
                                      use_3d_blocks=use_3d_blocks)
        return space.space_id

    def resize_space(self, space_id: int, new_dims) -> int:
        """§5.1: calling space management with an existing identifier
        expands or shrinks the space. Open handles keep working for the
        regions that remain in bounds."""
        return self.stl.resize_space(space_id, new_dims).space_id

    def delete_space(self, space_id: int) -> int:
        for handle in self._handles.values():
            if handle.space_id == space_id:
                handle.closed = True
        return self.stl.delete_space(space_id)

    def space(self, space_id: int) -> Space:
        return self.stl.get_space(space_id)

    # ------------------------------------------------------------------
    # open / close
    # ------------------------------------------------------------------
    def open_space(self, space_id: int,
                   view: Union[None, Sequence[int], View] = None) -> NdsHandle:
        """Open a space under a view.

        ``view`` may be None (producer's own dims), a dimensionality
        tuple (identity when equal to the space dims, row-major reshape
        otherwise — volumes must match, §3), or a :class:`View`.
        """
        space = self.stl.get_space(space_id)
        if view is None:
            resolved: View = IdentityView(space.dims)
        elif isinstance(view, View):
            resolved = view
        else:
            dims = tuple(int(d) for d in view)
            if dims == space.dims:
                resolved = IdentityView(space.dims)
            else:
                resolved = ReshapeView(space.dims, dims)
        volume = 1
        for extent in resolved.dims:
            volume *= extent
        if volume != space.volume:
            raise ViewVolumeError(
                f"view volume {volume} != space volume {space.volume}")
        handle = NdsHandle(handle_id=self._next_handle, space_id=space_id,
                           view=resolved)
        self._next_handle += 1
        self._handles[handle.handle_id] = handle
        space.open_views += 1
        return handle

    def close_space(self, handle: NdsHandle) -> None:
        if handle.closed:
            raise SpaceClosedError(f"handle {handle.handle_id} already closed")
        handle.closed = True
        space = self.stl.spaces.get(handle.space_id)
        if space is not None and space.open_views > 0:
            space.open_views -= 1
        self._handles.pop(handle.handle_id, None)

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def read(self, handle: NdsHandle, coordinate: Sequence[int],
             sub_dim: Sequence[int], start_time: float = 0.0,
             dtype: Optional[np.dtype] = None,
             ) -> Tuple[Optional[np.ndarray], StlOpResult]:
        """Read the partition at ``coordinate`` (of shape ``sub_dim``)
        under the handle's view. Returns (array, timing)."""
        self._check_open(handle)
        origin, extents = self._partition(handle, coordinate, sub_dim)
        space = self.stl.get_space(handle.space_id)
        regions = handle.view.resolve(origin, extents)
        out = None
        if self.stl.flash.store_data:
            out = np.zeros(tuple(extents) + (space.element_size,),
                           dtype=np.uint8)
        total = StlOpResult(start_time=start_time, end_time=start_time)
        for region in regions:
            part = self.stl.read_region(handle.space_id,
                                        region.producer_origin,
                                        region.producer_extents,
                                        start_time=start_time,
                                        with_data=out is not None)
            total.blocks.extend(part.blocks)
            total.end_time = max(total.end_time, part.end_time)
            if out is not None and part.data is not None:
                self._place(out, region, part.data)
        total.stats.count("api_reads")
        if out is None:
            return None, total
        if dtype is None:
            return out, total
        return bytes_to_array(out, dtype), total

    def write(self, handle: NdsHandle, coordinate: Sequence[int],
              sub_dim: Sequence[int], array: Optional[np.ndarray] = None,
              start_time: float = 0.0) -> StlOpResult:
        """Write a partition under the handle's view; ``array`` (shaped
        ``sub_dim``) may be None for timing-only runs."""
        self._check_open(handle)
        origin, extents = self._partition(handle, coordinate, sub_dim)
        raw = None
        if array is not None:
            if tuple(array.shape) != tuple(extents):
                raise ValueError(
                    f"array shape {array.shape} != sub-dimensionality {extents}")
            raw = array_to_bytes(array)
        regions = handle.view.resolve(origin, extents)
        total = StlOpResult(start_time=start_time, end_time=start_time)
        for region in regions:
            payload = None
            if raw is not None:
                payload = self._extract(raw, region)
            part = self.stl.write_region(handle.space_id,
                                         region.producer_origin,
                                         region.producer_extents,
                                         data=payload,
                                         start_time=start_time)
            total.blocks.extend(part.blocks)
            total.end_time = max(total.end_time, part.end_time)
        total.stats.count("api_writes")
        return total

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _check_open(handle: NdsHandle) -> None:
        if handle.closed:
            raise SpaceClosedError(f"handle {handle.handle_id} is closed")

    @staticmethod
    def _partition(handle: NdsHandle, coordinate: Sequence[int],
                   sub_dim: Sequence[int]) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        from repro.core.errors import InvalidCoordinateError
        dims = handle.view.dims
        if len(coordinate) != len(dims) or len(sub_dim) != len(dims):
            raise InvalidCoordinateError(
                f"request rank does not match view rank {len(dims)}")
        origin = []
        for axis, (c, f, d) in enumerate(zip(coordinate, sub_dim, dims)):
            if f < 1 or c < 0 or (c + 1) * f > d:
                raise InvalidCoordinateError(
                    f"partition {c}×{f} on axis {axis} exceeds extent {d}")
            origin.append(c * f)
        return tuple(origin), tuple(sub_dim)

    @staticmethod
    def _place(out: np.ndarray, region: RegionMap, data: np.ndarray) -> None:
        """Scatter a producer region's data into the consumer buffer."""
        target = tuple(slice(o, o + e)
                       for o, e in zip(region.out_origin, region.out_extents))
        out[target] = data.reshape(tuple(region.out_extents) + (out.shape[-1],))

    @staticmethod
    def _extract(raw: np.ndarray, region: RegionMap) -> np.ndarray:
        """Gather a producer region's payload from the consumer buffer."""
        source = tuple(slice(o, o + e)
                       for o, e in zip(region.out_origin, region.out_extents))
        chunk = raw[source]
        return np.ascontiguousarray(chunk).reshape(
            tuple(region.producer_extents) + (raw.shape[-1],))
