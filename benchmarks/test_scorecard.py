"""The reproduction scorecard: every quantitative paper anchor, graded.

One benchmark to rule on the reproduction as a whole — the same
measurements the per-figure benches make, collected into a single
paper-vs-measured verdict table.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis import format_table
from repro.analysis.scorecard import run_scorecard


def test_reproduction_scorecard(benchmark):
    anchors = once(benchmark, run_scorecard)
    rows = [[a.section, a.name, f"{a.paper:g}", f"{a.measured:.3g}",
             f"{a.delta:+.0%}", "pass" if a.passed else "CHECK"]
            for a in anchors]
    print()
    print(format_table(["section", "anchor", "paper", "measured",
                        "delta", "verdict"], rows,
                       title="Reproduction scorecard"))
    failed = [a.name for a in anchors if not a.passed]
    passed = sum(1 for a in anchors if a.passed)
    print(f"\n{passed}/{len(anchors)} anchors within tolerance"
          + (f"; outside: {failed}" if failed else ""))
    # The reproduction stands if the large majority of anchors hold and
    # every Fig. 9 microbenchmark anchor holds.
    assert passed >= len(anchors) - 2, failed
    for anchor in anchors:
        if anchor.section.startswith("Fig 9"):
            assert anchor.passed, anchor.name
