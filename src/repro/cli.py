"""Command-line front end: reproduce the paper's experiments standalone.

The analogue of the paper artifact's ``run_evaluation.sh``::

    python -m repro fig3              # component rate curves
    python -m repro fig9              # microbenchmarks
    python -m repro fig10             # end-to-end speedups (all ten apps)
    python -m repro fig10 -w GEMM BFS # a subset
    python -m repro overhead          # §7.3 latency/space overhead
    python -m repro table1            # workload inventory
    python -m repro bench             # wall-clock hot-path benchmark
    python -m repro all               # everything

Each command prints the same rows/series the paper's figure reports.
The pytest benchmarks (``pytest benchmarks/ --benchmark-only``) run the
same drivers with paper-vs-measured assertions on top.
"""

from __future__ import annotations

import argparse
import statistics
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.calibration import PAPER
from repro.analysis.experiments import (endtoend_sweep, fig3_series,
                                        micro_read_bandwidths,
                                        micro_write_bandwidths,
                                        overhead_latencies)
from repro.analysis.report import format_bandwidth, format_table

__all__ = ["main"]


def _cmd_fig3(args: argparse.Namespace) -> None:
    series = fig3_series()
    if getattr(args, "csv", None):
        from repro.analysis.export import export_series
        out = export_series(series, Path(args.csv) / "fig3.csv")
        print(f"wrote {out}")
    dims = sorted(next(iter(series.values())))
    rows = [[f"{d}x{d}"]
            + [format_bandwidth(series[key][d])
               for key in ("cuda", "tensor", "nvmeof", "internal_32ch",
                           "consumer_8ch")]
            for d in dims]
    print(format_table(
        ["matrix", "CUDA cores", "Tensor Cores", "NVMe-oF",
         "32ch internal", "8ch external"], rows,
        title="Fig 3: effective data processing rate / IO bandwidth"))


def _cmd_fig9(args: argparse.Namespace) -> None:
    n = args.size
    reads = micro_read_bandwidths(n=n)
    rows = [[pattern]
            + [format_bandwidth(values[k])
               for k in ("baseline", "software", "hardware")]
            for pattern, values in reads.items()]
    print(format_table(["pattern", "baseline", "software NDS",
                        "hardware NDS"], rows,
                       title=f"Fig 9(a-c): {n}x{n} doubles"))
    writes = micro_write_bandwidths(n=n)
    if getattr(args, "csv", None):
        from repro.analysis.export import export_micro
        out = export_micro(reads, writes, Path(args.csv) / "fig9.csv")
        print(f"wrote {out}")
    print()
    print(format_table(
        ["system", "write bandwidth", "vs baseline"],
        [[k, format_bandwidth(v), f"{v / writes['baseline']:.2f}x"]
         for k, v in writes.items()],
        title="Fig 9(d): whole-matrix write"))
    print(f"\npaper anchors: baseline row ~{PAPER.baseline_row_read_gbs} "
          f"GB/s, software ~{PAPER.software_row_read_gbs} GB/s, write "
          f"{PAPER.baseline_write_mbs:.0f} MB/s -{PAPER.software_write_penalty:.0%}"
          f"/-{PAPER.hardware_write_penalty:.0%}")


def _cmd_fig10(args: argparse.Namespace) -> None:
    sweep = endtoend_sweep(workload_names=args.workloads or None)
    if getattr(args, "csv", None):
        from repro.analysis.export import export_sweep
        out = export_sweep(sweep, Path(args.csv) / "fig10.csv")
        print(f"wrote {out}")
    rows = []
    collected = {"software-nds": [], "software-oracle": [],
                 "hardware-nds": []}
    for name, per_system in sweep.items():
        row = [name]
        for key in ("software-nds", "software-oracle", "hardware-nds"):
            value = per_system[key][0]
            collected[key].append(value)
            row.append(f"{value:.2f}x")
        base_idle = per_system["baseline"][1]
        if base_idle > 0:
            row.append(f"{1 - per_system['hardware-nds'][1] / base_idle:+.0%}")
        else:
            row.append("-")
        rows.append(row)
    print(format_table(
        ["workload", "software NDS", "oracle", "hardware NDS",
         "hw idle reduction"], rows,
        title="Fig 10: end-to-end speedup over the baseline"))
    if len(rows) > 1:
        means = {k: statistics.mean(v) for k, v in collected.items()}
        print(f"\nmeans: software {means['software-nds']:.2f}x "
              f"(paper {PAPER.software_nds_speedup}), hardware "
              f"{means['hardware-nds']:.2f}x (paper "
              f"{PAPER.hardware_nds_speedup})")


def _cmd_overhead(_args: argparse.Namespace) -> None:
    numbers = overhead_latencies()
    base = numbers["baseline"]
    rows = [[name, f"{numbers[name] * 1e6:.1f}",
             f"{(numbers[name] - base) * 1e6:+.1f}"]
            for name in ("baseline", "software", "hardware")]
    print(format_table(["system", "single-page latency (us)",
                        "adder vs baseline (us)"], rows,
                       title="Sec 7.3: worst-case request latency"))
    print(f"\nSTL space overhead: {numbers['space_overhead']:.3%} "
          f"(paper ~{PAPER.stl_space_overhead_fraction:.1%}); paper "
          f"adders: {PAPER.software_stl_latency_us:.0f} us software, "
          f"{PAPER.hardware_stl_latency_us:.0f} us hardware")


def _cmd_table1(_args: argparse.Namespace) -> None:
    from repro.workloads import all_workloads
    rows = []
    for wl in all_workloads():
        datasets = " + ".join("x".join(map(str, ds.dims))
                              for ds in wl.datasets())
        subs = sorted({f.extents for f in wl.tile_plan()})
        rows.append([wl.name, wl.category, wl.data_dim_label,
                     wl.kernel_dim_label, datasets,
                     " / ".join("x".join(map(str, s)) for s in subs)])
    print(format_table(["workload", "category", "data", "kernel",
                        "dataset (scaled)", "sub-dimension (scaled)"],
                       rows, title="Table 1 (scaled)"))


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.obs.report import (analyze_trace, build_report,
                                  format_report, report_json,
                                  write_utilization_csvs)

    if args.trace:
        from repro.runtime.trace import TraceRecorder
        report = analyze_trace(TraceRecorder.load(args.trace),
                               windows=args.windows,
                               include_ops=not args.no_ops)
    else:
        from repro.workloads.gemm import GemmWorkload
        workload = GemmWorkload(n=args.size, tile=args.tile,
                                max_tiles=args.tiles)
        report = build_report(workload=workload, systems=args.systems,
                              queue_depth=args.queue_depth,
                              windows=args.windows,
                              include_ops=not args.no_ops,
                              prometheus=bool(args.prom),
                              devices=args.devices)
    if args.prom:
        if args.trace:
            print("--prom needs a live run (saved traces carry no "
                  "metrics registry); skipped", file=sys.stderr)
        else:
            text = "".join(section.pop("prometheus", "")
                           for section in report["systems"].values())
            prom_path = Path(args.prom)
            prom_path.parent.mkdir(parents=True, exist_ok=True)
            prom_path.write_text(text)
            print(f"wrote {args.prom}")
    if args.json:
        json_path = Path(args.json)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(report_json(report))
        print(f"wrote {args.json}")
    if args.csv_dir:
        for path in write_utilization_csvs(report, args.csv_dir):
            print(f"wrote {path}")
    if not args.json or args.text:
        print(format_report(report))


def _cmd_loadtest(args: argparse.Namespace) -> None:
    from repro.analysis.loadline_sweep import (format_loadline,
                                               loadline_sweep, sweep_json)
    from repro.workloads.embedding import EmbeddingWorkload
    workload = EmbeddingWorkload(
        num_embeddings=args.rows, embedding_dim=args.dim,
        pooling_factor=args.pooling_factor, batch_size=args.batch_size,
        alpha=args.alpha, update_fraction=args.update_fraction,
        seed=args.seed)
    cache = None
    if args.cache_mb:
        from repro.cache.config import CacheConfig
        cache = CacheConfig(capacity_bytes=int(args.cache_mb * 2**20),
                            policy=args.cache_policy,
                            write_back=args.cache_write_back,
                            prefetch=args.cache_prefetch)
    sweep = loadline_sweep(systems=args.systems,
                           device_counts=args.devices,
                           base_rate=args.base_rate,
                           growth=args.growth,
                           max_points=args.points,
                           horizon=args.horizon,
                           admission_queue=args.admission_queue or None,
                           arrival=args.arrival,
                           workload=workload,
                           seed=args.seed,
                           tenants=args.tenants,
                           cache=cache)
    print(format_loadline(sweep))
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(sweep_json(sweep))
        print(f"wrote {args.json}")


def _run_monitor_scenario(args: argparse.Namespace, policy):
    """Run the scripted live-monitor scenario and return (trace, payload).

    The defaults reproduce the worked scenario from
    ``docs/OBSERVABILITY.md``: a bursty MMPP embedding-serving stream
    pushed past the knee so the burn-rate rules fire; ``--kill-device``
    and ``--cache-mb --cache-write-back`` layer a mid-run device loss
    and a write-back DRAM tier on top.
    """
    from repro.analysis.loadline_sweep import (arrival_process,
                                               default_workload)
    from repro.nvm.profiles import TINY_TEST
    from repro.obs.monitor import Monitor
    from repro.obs.report import SYSTEM_FACTORIES
    from repro.runtime.trace import TraceRecorder
    from repro.traffic.injector import OpenLoopInjector, TrafficStream

    factory = SYSTEM_FACTORIES.get(args.system)
    if factory is None:
        raise SystemExit(f"unknown system {args.system!r}; pick from "
                         f"{sorted(SYSTEM_FACTORIES)}")
    kwargs = {}
    if args.devices > 1:
        kwargs["devices"] = args.devices
    if args.cache_mb:
        from repro.cache.config import CacheConfig
        kwargs["cache"] = CacheConfig(
            capacity_bytes=int(args.cache_mb * 2**20),
            write_back=args.cache_write_back)
    if args.kill_device is not None:
        from repro.faults.model import FaultConfig
        from repro.faults.plan import FaultPlan
        if args.devices < 2:
            raise SystemExit("--kill-device needs --devices >= 2 "
                             "(parity rebuild requires surviving peers)")
        kill_at = (args.kill_at if args.kill_at is not None
                   else args.horizon / 2)
        kwargs["faults"] = FaultConfig(parity=True,
                                       plan=FaultPlan().kill_device(
                                           args.kill_device, at=kill_at))
    system = factory(TINY_TEST, **kwargs)
    workload = default_workload(seed=args.seed)
    if args.system == "software-oracle":
        for ds in workload.datasets():
            system.ingest(ds.name, ds.dims, ds.element_size,
                          tile=(1, workload.embedding_dim))
    else:
        for ds in workload.datasets():
            system.ingest(ds.name, ds.dims, ds.element_size)
    system.reset_time()
    system._reset_runtime()

    if args.tenants <= 1:
        streams = [TrafficStream(
            "serve", arrival_process(args.arrival, args.rate, args.seed),
            workload.request_factory(),
            admission_queue=args.admission_queue or None)]
    else:
        streams = [TrafficStream(
            f"serve{t}",
            arrival_process(args.arrival, args.rate / args.tenants,
                            args.seed + 7919 * t),
            workload.request_factory(salt=t),
            admission_queue=args.admission_queue or None)
            for t in range(args.tenants)]
    monitor = Monitor(windows=args.windows, slo=policy,
                      horizon=args.horizon)
    trace = TraceRecorder()
    injector = OpenLoopInjector(system, streams, horizon=args.horizon,
                                trace=trace, marks=args.windows,
                                monitor=monitor)
    injector.run()
    return trace, monitor.report(trace=trace)


def _cmd_monitor(args: argparse.Namespace) -> None:
    from repro.obs.monitor import (Monitor, format_monitor, monitor_csv,
                                   monitor_json, monitor_prometheus)
    from repro.obs.slo import SloPolicy

    policy = SloPolicy(latency_target=args.slo_target_us * 1e-6,
                       target_fraction=args.slo_fraction)
    if args.trace:
        from repro.runtime.trace import TraceRecorder
        trace = TraceRecorder.load(args.trace)
        # an explicit --horizon pins the window grid (exact live-run
        # match); otherwise infer it from the trace extent
        monitor = Monitor.from_trace(trace, windows=args.windows,
                                     slo=policy, horizon=args.horizon)
        payload = monitor.report(trace=trace)
    else:
        if args.horizon is None:
            args.horizon = 0.08
        trace, payload = _run_monitor_scenario(args, policy)
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(monitor_json(payload))
        print(f"wrote {args.json}")
    if args.csv:
        out = Path(args.csv)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(monitor_csv(payload))
        print(f"wrote {args.csv}")
    if args.prom:
        out = Path(args.prom)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(monitor_prometheus(payload))
        print(f"wrote {args.prom}")
    if args.trace_out:
        out = Path(args.trace_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        trace.save(out)
        print(f"wrote {args.trace_out}")
    if not args.json or args.text:
        print(format_monitor(payload))


def _cmd_bench(args: argparse.Namespace) -> None:
    from repro.analysis.bench import (bench_json, format_bench,
                                      run_hotpath_bench)
    tuning = "scalar" if args.scalar else None
    if args.profile:
        import cProfile
        import pstats
        profiler = cProfile.Profile()
        profiler.enable()
        bench = run_hotpath_bench(max_tiles=args.tiles,
                                  repeats=args.repeats, tuning=tuning)
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(20)
    else:
        bench = run_hotpath_bench(max_tiles=args.tiles,
                                  repeats=args.repeats, tuning=tuning)
    print(format_bench(bench))
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(bench_json(bench))
        print(f"wrote {args.json}")


def _cmd_all(args: argparse.Namespace) -> None:
    for command in (_cmd_table1, _cmd_fig3, _cmd_fig9, _cmd_overhead,
                    _cmd_fig10):
        command(args)
        print()


def build_parser() -> argparse.ArgumentParser:
    from repro.obs.utilization import DEFAULT_WINDOWS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'NDS: N-Dimensional Storage' (MICRO 2021)")
    sub = parser.add_subparsers(dest="command", required=True)

    fig3 = sub.add_parser("fig3", help="component rate curves")
    fig3.add_argument("--csv", default=None, metavar="DIR",
                      help="also write tidy CSV into DIR")
    fig3.set_defaults(fn=_cmd_fig3)
    fig9 = sub.add_parser("fig9", help="I/O microbenchmarks")
    fig9.add_argument("--size", type=int, default=4096,
                      help="matrix dimension (default 4096)")
    fig9.add_argument("--csv", default=None, metavar="DIR",
                      help="also write tidy CSV into DIR")
    fig9.set_defaults(fn=_cmd_fig9)
    fig10 = sub.add_parser("fig10", help="end-to-end workloads")
    fig10.add_argument("-w", "--workloads", nargs="*", default=None,
                       help="subset of workload names (default: all)")
    fig10.add_argument("--csv", default=None, metavar="DIR",
                       help="also write tidy CSV into DIR")
    fig10.set_defaults(fn=_cmd_fig10)
    report = sub.add_parser(
        "report", help="critical-path / metrics / utilization report")
    report.add_argument("--trace", default=None, metavar="PATH",
                        help="analyze a saved Chrome trace JSON instead "
                             "of running a workload")
    report.add_argument("--systems", nargs="*",
                        default=["baseline", "software-nds", "hardware-nds",
                                 "software-oracle"],
                        help="systems to run (default: all four)")
    report.add_argument("--size", type=int, default=512,
                        help="GEMM matrix dimension (default 512)")
    report.add_argument("--tile", type=int, default=128,
                        help="GEMM tile dimension (default 128)")
    report.add_argument("--tiles", type=int, default=24,
                        help="max tile fetches (default 24)")
    report.add_argument("--queue-depth", type=int, default=8,
                        help="per-stream queue depth (default 8)")
    report.add_argument("--devices", type=int, default=1,
                        help="device-pool size (default 1 = single "
                             "device; >1 adds a per-device breakdown)")
    report.add_argument("--windows", type=int, default=DEFAULT_WINDOWS,
                        help="utilization windows "
                             f"(default {DEFAULT_WINDOWS})")
    report.add_argument("--json", default=None, metavar="PATH",
                        help="write the byte-stable JSON report to PATH")
    report.add_argument("--csv-dir", default=None, metavar="DIR",
                        help="write per-system utilization CSVs into DIR")
    report.add_argument("--prom", default=None, metavar="PATH",
                        help="write Prometheus text-format metrics to PATH")
    report.add_argument("--no-ops", action="store_true",
                        help="omit the per-op attribution list")
    report.add_argument("--text", action="store_true",
                        help="print the text report even with --json")
    report.set_defaults(fn=_cmd_report)
    loadtest = sub.add_parser(
        "loadtest", help="open-loop embedding-serving load line "
                         "(offered load vs goodput and tails)")
    loadtest.add_argument("--systems", nargs="*",
                          default=["baseline", "software-nds",
                                   "hardware-nds", "software-oracle"],
                          help="systems to ramp (default: all four)")
    loadtest.add_argument("--devices", type=int, nargs="*", default=[1],
                          help="device-pool sizes to ramp (default: 1)")
    loadtest.add_argument("--arrival", default="poisson",
                          choices=["poisson", "mmpp", "diurnal"],
                          help="arrival process shape (default: poisson)")
    loadtest.add_argument("--base-rate", type=float, default=400.0,
                          help="starting offered rate, requests/s "
                               "(default 400; scaled by device count)")
    loadtest.add_argument("--growth", type=float, default=2.0,
                          help="rate multiplier per ramp point (default 2)")
    loadtest.add_argument("--points", type=int, default=8,
                          help="max ramp points per series (default 8)")
    loadtest.add_argument("--horizon", type=float, default=0.05,
                          help="injection horizon, model seconds "
                               "(default 0.05)")
    loadtest.add_argument("--tenants", type=int, default=1,
                          help="co-running traffic streams splitting the "
                               "offered rate (default 1)")
    loadtest.add_argument("--admission-queue", type=int, default=64,
                          help="per-stream admission queue bound "
                               "(default 64; 0 = unbounded)")
    loadtest.add_argument("--rows", type=int, default=256,
                          help="embedding rows per table (default 256)")
    loadtest.add_argument("--dim", type=int, default=16,
                          help="embedding dimension (default 16)")
    loadtest.add_argument("--batch-size", type=int, default=2,
                          help="bags per closed-loop batch (default 2)")
    loadtest.add_argument("--pooling-factor", type=int, default=2,
                          help="row lookups per bag (default 2)")
    loadtest.add_argument("--alpha", type=float, default=1.05,
                          help="zipf skew of row popularity (default 1.05)")
    loadtest.add_argument("--update-fraction", type=float, default=0.25,
                          help="share of requests that also write their "
                               "rows back (default 0.25)")
    loadtest.add_argument("--seed", type=int, default=97,
                          help="traffic seed (default 97)")
    loadtest.add_argument("--cache-mb", type=float, default=0,
                          help="host DRAM tier capacity in MiB "
                               "(default 0 = no tier)")
    loadtest.add_argument("--cache-policy", default="lru",
                          choices=["lru", "clock", "admission"],
                          help="tier eviction policy (default lru)")
    loadtest.add_argument("--cache-write-back", action="store_true",
                          help="buffer writes in the tier instead of "
                               "writing through")
    loadtest.add_argument("--cache-prefetch", type=int, default=0,
                          help="N-D neighbor prefetch depth "
                               "(default 0 = off)")
    loadtest.add_argument("--json", default=None, metavar="PATH",
                          help="write the byte-stable sweep JSON to PATH")
    loadtest.set_defaults(fn=_cmd_loadtest)
    monitor = sub.add_parser(
        "monitor", help="live windowed monitor: time-series, SLO "
                        "burn-rate alerts, bottleneck diagnosis")
    monitor.add_argument("--trace", default=None, metavar="PATH",
                         help="replay a saved Chrome trace through the "
                              "monitor instead of running live")
    monitor.add_argument("--system", default="software-nds",
                         help="system to run live (default software-nds)")
    monitor.add_argument("--devices", type=int, default=1,
                         help="device-pool size (default 1)")
    monitor.add_argument("--rate", type=float, default=4000.0,
                         help="offered rate, requests/s (default 4000 — "
                              "past the TINY_TEST knee so alerts fire)")
    monitor.add_argument("--arrival", default="mmpp",
                         choices=["poisson", "mmpp", "diurnal"],
                         help="arrival shape (default: mmpp burst)")
    monitor.add_argument("--horizon", type=float, default=None,
                         help="injection horizon, model seconds "
                              "(default 0.08; with --trace, pins the "
                              "replay window grid instead of inferring "
                              "it from the trace extent)")
    monitor.add_argument("--windows", type=int, default=DEFAULT_WINDOWS,
                         help="monitor windows over the horizon "
                              f"(default {DEFAULT_WINDOWS})")
    monitor.add_argument("--tenants", type=int, default=1,
                         help="co-running traffic streams (default 1)")
    monitor.add_argument("--admission-queue", type=int, default=64,
                         help="per-stream admission queue bound "
                              "(default 64; 0 = unbounded)")
    monitor.add_argument("--seed", type=int, default=97,
                         help="traffic seed (default 97)")
    monitor.add_argument("--slo-target-us", type=float, default=500.0,
                         help="SLO latency bound in microseconds "
                              "(default 500)")
    monitor.add_argument("--slo-fraction", type=float, default=0.999,
                         help="SLO good fraction (default 0.999)")
    monitor.add_argument("--cache-mb", type=float, default=0,
                         help="host DRAM tier capacity in MiB "
                              "(default 0 = no tier)")
    monitor.add_argument("--cache-write-back", action="store_true",
                         help="buffer writes in the tier")
    monitor.add_argument("--kill-device", type=int, default=None,
                         metavar="N",
                         help="kill pool member N mid-run (needs "
                              "--devices >= 2; parity rebuild covers it)")
    monitor.add_argument("--kill-at", type=float, default=None,
                         help="kill time, model seconds "
                              "(default horizon/2)")
    monitor.add_argument("--json", default=None, metavar="PATH",
                         help="write the byte-stable monitor JSON to PATH")
    monitor.add_argument("--csv", default=None, metavar="PATH",
                         help="write the windowed series as CSV to PATH")
    monitor.add_argument("--prom", default=None, metavar="PATH",
                         help="write Prometheus text format (with "
                              "model-time timestamps) to PATH")
    monitor.add_argument("--trace-out", default=None, metavar="PATH",
                         help="save the annotated Chrome trace (alert "
                              "instants included) to PATH")
    monitor.add_argument("--text", action="store_true",
                         help="print the text timeline even with --json")
    monitor.set_defaults(fn=_cmd_monitor)
    bench = sub.add_parser(
        "bench", help="wall-clock hot-path benchmark (BENCH_sim.json)")
    bench.add_argument("--json", default="BENCH_sim.json", metavar="PATH",
                       help="write wall + simulated numbers to PATH "
                            "(default BENCH_sim.json; empty string "
                            "disables)")
    bench.add_argument("--tiles", type=int, default=48,
                       help="max tile fetches per workload (default 48)")
    bench.add_argument("--repeats", type=int, default=1,
                       help="wall-time repeats, keep the fastest "
                            "(default 1)")
    bench.add_argument("--profile", action="store_true",
                       help="run under cProfile and print the top 20 "
                            "functions by cumulative time")
    bench.add_argument("--scalar", action="store_true",
                       help="A/B switch: force the per-access scalar "
                            "paths (no columnar chains, no epoch/fan-"
                            "out batching) on every cell")
    bench.set_defaults(fn=_cmd_bench)
    sub.add_parser("overhead", help="Sec 7.3 overheads").set_defaults(
        fn=_cmd_overhead)
    sub.add_parser("scorecard",
                   help="grade every paper anchor").set_defaults(
        fn=_cmd_scorecard)
    sub.add_parser("table1", help="workload inventory").set_defaults(
        fn=_cmd_table1)
    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--size", type=int, default=4096)
    everything.add_argument("-w", "--workloads", nargs="*", default=None)
    everything.set_defaults(fn=_cmd_all)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())


def _cmd_scorecard(_args: argparse.Namespace) -> None:
    from repro.analysis.scorecard import run_scorecard
    rows = []
    for anchor in run_scorecard():
        rows.append([anchor.section, anchor.name, f"{anchor.paper:g}",
                     f"{anchor.measured:.3g}", f"{anchor.delta:+.0%}",
                     "pass" if anchor.passed else "CHECK"])
    print(format_table(["section", "anchor", "paper", "measured",
                        "delta", "verdict"], rows,
                       title="Reproduction scorecard"))
