"""Tests for CSV export."""

import csv

from repro.analysis.export import export_micro, export_series, export_sweep


def _rows(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestExportSeries:
    def test_tidy_layout(self, tmp_path):
        path = export_series({"cuda": {32: 1.5e9, 64: 3e9},
                              "tensor": {32: 9e9}},
                             tmp_path / "fig3.csv")
        rows = _rows(path)
        assert rows[0] == ["series", "dim", "bytes_per_second"]
        assert ["cuda", "32", repr(1.5e9)] in rows
        assert len(rows) == 4

    def test_values_roundtrip_exactly(self, tmp_path):
        value = 1.2345678901234567e9
        path = export_series({"s": {1: value}}, tmp_path / "x.csv")
        rows = _rows(path)
        assert float(rows[1][2]) == value

    def test_creates_parent_dirs(self, tmp_path):
        path = export_series({}, tmp_path / "deep" / "nested" / "x.csv")
        assert path.exists()


class TestExportMicro:
    def test_reads_and_writes_combined(self, tmp_path):
        path = export_micro(
            {"row-fetch": {"baseline": 4.5e9, "software": 3.8e9}},
            {"baseline": 3.0e8}, tmp_path / "fig9.csv")
        rows = _rows(path)
        assert ["row-fetch", "software", repr(3.8e9)] in rows
        assert ["write", "baseline", repr(3.0e8)] in rows


class TestExportSweep:
    def test_sweep_layout(self, tmp_path):
        path = export_sweep(
            {"GEMM": {"baseline": (1.0, 0.1), "hardware-nds": (9.2, 0.01)}},
            tmp_path / "fig10.csv")
        rows = _rows(path)
        assert rows[0] == ["workload", "system", "speedup",
                           "kernel_idle_seconds"]
        assert ["GEMM", "hardware-nds", repr(9.2), repr(0.01)] in rows
