"""The calibrated error model: RBER as f(wear, retention) + ECC ladder.

Flash raw bit-error rate (RBER) grows with program/erase cycling and
with the time a page has sat since it was programmed. The shape used
here is the first-order model from the characterization literature
(Cai et al., *Error Patterns in MLC NAND Flash Memory*, DATE 2012;
Mielke et al., *Bit Error Rate in NAND Flash Memories*, IRPS 2008):
a wear term that scales linearly in erase count and a retention term
linear in elapsed time, both multiplying a fresh-page baseline::

    rber(e, dt) = rber_base * (1 + e / wear_scale)
                            * (1 + dt / retention_scale)

The ECC engine corrects up to ``ecc_rber`` at the default sensing
point. Above that, the controller walks a **read-retry ladder**
(adjusted reference voltages + stronger soft-decision decoding): tier
``k`` corrects up to ``ecc_rber * retry_rber_gain[k]`` but re-senses
the page for ``retry_sense_factors[k] * t_read``. A page whose
effective RBER exceeds the last tier is uncorrectable.

Randomness is a deterministic hash (FNV-1a) of ``(seed, page,
program-epoch, read-ordinal)``, so a given seed reproduces the exact
same fault sequence on every run — the property the determinism CI job
asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = ["FaultConfig", "ErrorModel", "ReadPlan", "stable_unit"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def stable_unit(*keys: int) -> float:
    """A uniform draw in [0, 1) from integer keys via 64-bit FNV-1a.

    Unlike ``hash()`` this is stable across processes and Python
    versions, which is what makes fault traces byte-identical per seed.
    """
    h = _FNV_OFFSET
    for key in keys:
        k = int(key) & _MASK64
        for _ in range(8):
            h ^= k & 0xFF
            h = (h * _FNV_PRIME) & _MASK64
            k >>= 8
    return h / 2.0**64


@dataclass(frozen=True)
class FaultConfig:
    """Every knob of the fault subsystem. The default instance models a
    healthy mid-life TLC device: reads almost never retry, programs and
    erases never fail. Tests and experiments override aggressively."""

    #: master switch-equivalent: systems only build an injector when a
    #: config is passed, so absence of a config == faults disabled
    seed: int = 0xF417

    # --- raw bit-error-rate model -------------------------------------
    #: RBER of a fresh, just-programmed page
    rber_base: float = 5e-5
    #: erase count at which wear alone doubles the RBER (rated TLC
    #: endurance is a few thousand cycles)
    wear_scale: float = 3000.0
    #: retention seconds at which time alone doubles the RBER (~4 months)
    retention_scale: float = 1e7
    #: pages start life as if already erased this many times (used by
    #: the reliability experiments to model an aged device)
    initial_wear: int = 0
    #: per-read log2 jitter: the draw scales RBER by
    #: ``2 ** (jitter_log2 * (2u - 1))`` for u ~ U[0, 1)
    jitter_log2: float = 2.0

    # --- ECC + read-retry ladder --------------------------------------
    #: max RBER the ECC corrects at the default sensing point
    ecc_rber: float = 8e-3
    #: per-tier correction gain over ``ecc_rber``
    retry_rber_gain: Tuple[float, ...] = (1.8, 3.2, 5.6)
    #: per-tier re-sense time as a multiple of ``t_read``
    retry_sense_factors: Tuple[float, ...] = (1.25, 1.75, 2.75)

    # --- program / erase failure --------------------------------------
    #: probability a program reports status-fail on a fresh block
    program_fail_base: float = 0.0
    #: added program-fail probability per block erase count
    program_fail_wear: float = 0.0
    #: probability an erase reports status-fail on a fresh block
    erase_fail_base: float = 0.0
    #: added erase-fail probability per block erase count
    erase_fail_wear: float = 0.0

    # --- redundancy ---------------------------------------------------
    #: maintain one XOR parity unit per NDS building block and
    #: reconstruct lost pages from the surviving units (degraded reads)
    parity: bool = False

    #: scripted injections (kill a channel, mark a block bad, corrupt a
    #: page) applied as model time passes
    plan: Optional["FaultPlan"] = None

    def __post_init__(self) -> None:
        if self.rber_base < 0 or self.ecc_rber <= 0:
            raise ValueError("rber_base must be >= 0 and ecc_rber > 0")
        if self.wear_scale <= 0 or self.retention_scale <= 0:
            raise ValueError("wear/retention scales must be positive")
        if len(self.retry_rber_gain) != len(self.retry_sense_factors):
            raise ValueError(
                "retry_rber_gain and retry_sense_factors must have the "
                "same number of tiers")
        if any(g <= 1.0 for g in self.retry_rber_gain):
            raise ValueError("retry gains must exceed 1.0")


@dataclass
class ReadPlan:
    """Deterministic outcome of one page read against the ECC ladder."""

    #: extra sensing rounds charged (0 = clean first read)
    retries: int = 0
    #: per-retry sense time as multiples of ``t_read``
    sense_factors: List[float] = field(default_factory=list)
    #: ladder exhausted — the read fails after the charged retries
    uncorrectable: bool = False
    reason: str = "ecc"

    @classmethod
    def clean(cls) -> "ReadPlan":
        return cls()


class ErrorModel:
    """Pure functions of the fault configuration (no mutable state)."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def rber(self, erase_count: int, retention_seconds: float) -> float:
        """Modelled raw bit-error rate of a page at read time."""
        cfg = self.config
        wear = 1.0 + (cfg.initial_wear + erase_count) / cfg.wear_scale
        retention = 1.0 + max(0.0, retention_seconds) / cfg.retention_scale
        return cfg.rber_base * wear * retention

    def read_outcome(self, draw: float, rber: float) -> ReadPlan:
        """Walk the ladder for one read whose jittered RBER is
        ``rber * 2 ** (jitter_log2 * (2*draw - 1))``."""
        cfg = self.config
        effective = rber * 2.0 ** (cfg.jitter_log2 * (2.0 * draw - 1.0))
        if effective <= cfg.ecc_rber:
            return ReadPlan.clean()
        plan = ReadPlan()
        for tier, gain in enumerate(cfg.retry_rber_gain):
            plan.retries = tier + 1
            plan.sense_factors.append(cfg.retry_sense_factors[tier])
            if effective <= cfg.ecc_rber * gain:
                return plan
        plan.uncorrectable = True
        return plan

    def full_ladder(self, reason: str) -> ReadPlan:
        """The outcome for a known-lost page (scripted corruption): the
        controller still walks every tier before giving up."""
        cfg = self.config
        return ReadPlan(retries=len(cfg.retry_rber_gain),
                        sense_factors=list(cfg.retry_sense_factors),
                        uncorrectable=True, reason=reason)

    # ------------------------------------------------------------------
    def program_fails(self, draw: float, erase_count: int) -> bool:
        cfg = self.config
        prob = cfg.program_fail_base + cfg.program_fail_wear * (
            cfg.initial_wear + erase_count)
        return draw < prob

    def erase_fails(self, draw: float, erase_count: int) -> bool:
        cfg = self.config
        prob = cfg.erase_fail_base + cfg.erase_fail_wear * (
            cfg.initial_wear + erase_count)
        return draw < prob
