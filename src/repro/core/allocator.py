"""NDS space allocator — the §4.2 access-unit selection rules.

The allocator hands out physical pages for building-block positions so
that every block spreads over as many channels (then banks) as
possible:

1. first unit of a block → random channel and bank;
2. existing block → the *least-used channel* of that block, in the same
   bank as the block's most recently allocated unit;
3. if the block already uses every channel of that bank → an unused or
   least-used bank;
4. if every (channel, bank) is used → one of the least-used banks, then
   rules 1–3 again.

Overwrites pick a fresh unit from the *same channel and bank* as the
overwritten unit, preserving the block's parallelism.

Free-space bookkeeping reuses the per-(channel, bank) log-structured
:class:`~repro.ftl.mapping.PlaneAllocator`; NDS manages flash like an
FTL underneath, it just *places* differently.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.core.btree import BlockEntry
from repro.core.errors import CapacityError
from repro.ftl.mapping import OutOfSpaceError, PlaneAllocator
from repro.nvm.geometry import Geometry

__all__ = ["NdsAllocator"]


class NdsAllocator:
    """Physical-unit allocation for building blocks."""

    def __init__(self, geometry: Geometry, seed: int = 0x5D5) -> None:
        self.geometry = geometry
        self.rng = random.Random(seed)
        self.planes: Dict[Tuple[int, int], PlaneAllocator] = {
            (c, b): PlaneAllocator(c, b, geometry)
            for c in range(geometry.channels)
            for b in range(geometry.banks_per_channel)
        }
        #: optional :class:`~repro.faults.injector.FaultInjector` shared
        #: with the flash array — lets placement steer around dead
        #: channels; None leaves every decision untouched
        self.faults = None

    def _channel_dead(self, channel: int) -> bool:
        return self.faults is not None and self.faults.channel_dead(channel)

    # ------------------------------------------------------------------
    # free-space queries
    # ------------------------------------------------------------------
    def free_fraction(self, channel: int, bank: int) -> float:
        plane = self.planes[(channel, bank)]
        return plane.free_page_count() / self.geometry.pages_per_bank

    def total_free_pages(self) -> int:
        return sum(p.free_page_count() for p in self.planes.values())

    # ------------------------------------------------------------------
    # §4.2 placement rules
    # ------------------------------------------------------------------
    def choose_target(self, entry: BlockEntry) -> Tuple[int, int]:
        """Pick the (channel, bank) the next unit of ``entry`` should
        come from, before consulting free space."""
        g = self.geometry
        if entry.last_alloc is None:
            # Rule 1: brand-new block — random channel and bank.
            return (self.rng.randrange(g.channels),
                    self.rng.randrange(g.banks_per_channel))
        bank = entry.last_alloc.bank
        channels_in_bank = {c for (c, b) in entry.bank_use if b == bank}
        if len(channels_in_bank) >= g.channels:
            # Rule 3: block covers every channel of this bank already —
            # move to an unused or least-used bank.
            bank = self._least_used_bank(entry)
        # Rule 2: least-used channel (within the chosen bank).
        channel = self._least_used_channel(entry, bank)
        return channel, bank

    def _least_used_bank(self, entry: BlockEntry) -> int:
        usage = [0] * self.geometry.banks_per_channel
        for (_c, b), count in entry.bank_use.items():
            usage[b] += count
        least = min(usage)
        candidates = [b for b, u in enumerate(usage) if u == least]
        return self.rng.choice(candidates)

    def _least_used_channel(self, entry: BlockEntry, bank: int) -> int:
        usage = [entry.bank_use.get((c, bank), 0)
                 for c in range(self.geometry.channels)]
        least = min(usage)
        candidates = [c for c, u in enumerate(usage) if u == least]
        # Tie-break on overall per-channel use so blocks larger than one
        # stripe still spread evenly.
        candidates.sort(key=lambda c: entry.channel_use.get(c, 0))
        return candidates[0]

    # ------------------------------------------------------------------
    def allocate(self, entry: BlockEntry, position: int,
                 prefer: Optional[Tuple[int, int]] = None):
        """Allocate a physical unit for block position ``position``.

        ``prefer`` pins (channel, bank) — used for overwrites, which must
        land in the same channel and bank as the replaced unit (§4.2).
        Falls back over banks/channels (rule 4) before giving up.
        """
        if prefer is not None:
            target = prefer
        else:
            target = self.choose_target(entry)
        ppa = None
        if not self._channel_dead(target[0]):
            ppa = self._try_allocate(target)
        if ppa is None:
            ppa = self._fallback_allocate(target)
        if ppa is None:
            raise CapacityError("no free access unit in any channel/bank")
        entry.record_alloc(ppa, position)
        return ppa

    def allocate_raw(self, prefer: Optional[Tuple[int, int]] = None):
        """Allocate a physical unit outside any building block's
        bookkeeping — used for cross-channel parity units."""
        target = prefer
        if target is None or self._channel_dead(target[0]):
            live = [key for key in self.planes if not self._channel_dead(key[0])]
            if not live:
                raise CapacityError("no live channel for a raw allocation")
            target = max(live, key=lambda key: self.planes[key].free_page_count())
        ppa = self._try_allocate(target)
        if ppa is None:
            ppa = self._fallback_allocate(target)
        if ppa is None:
            raise CapacityError("no free access unit in any channel/bank")
        return ppa

    def _try_allocate(self, target: Tuple[int, int]):
        try:
            return self.planes[target].allocate_page()
        except OutOfSpaceError:
            return None

    def _fallback_allocate(self, target: Tuple[int, int]):
        """Rule 4: scan least-used (most-free) planes first."""
        ordered = sorted(self.planes.keys(),
                         key=lambda key: -self.planes[key].free_page_count())
        for key in ordered:
            if key == target or self._channel_dead(key[0]):
                continue
            ppa = self._try_allocate(key)
            if ppa is not None:
                return ppa
        return None

    def invalidate(self, ppa) -> None:
        self.planes[(ppa.channel, ppa.bank)].invalidate(ppa)
