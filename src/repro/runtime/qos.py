"""Per-tenant quality-of-service configuration.

One :class:`QosSpec` per tenant stream bundles the three QoS levers the
spine offers:

* ``weight`` — the stream's share under ``"weighted"`` arbitration
  (deficit/virtual-time scheduling over per-op service time: a weight-3
  stream receives ~3× the service share of a weight-1 co-tenant);
* ``latency_target`` — a per-op latency SLO in seconds; the scheduler
  counts met/violated ops and marks violations in the trace;
* ``shard`` — a :class:`~repro.core.sharding.ShardSpec` pinning the
  tenant's datasets to a disjoint channel/bank subset (hard isolation:
  co-tenants never contend on the same flash timelines). On a device
  pool this generalizes to a two-tier
  :class:`~repro.cluster.PoolShardSpec`: a device subset × a
  channel/bank subset applied within each of those devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.cluster.sharding import PoolShardSpec
from repro.core.sharding import ShardSpec

__all__ = ["QosSpec", "ShardSpec", "PoolShardSpec"]


@dataclass(frozen=True)
class QosSpec:
    """QoS levers for one tenant stream."""

    weight: float = 1.0
    latency_target: Optional[float] = None
    shard: Optional[Union[ShardSpec, PoolShardSpec]] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("stream weight must be > 0")
        if self.latency_target is not None and self.latency_target <= 0:
            raise ValueError("latency target must be > 0 seconds")
