"""Figure 3 — effective data processing rates / I/O bandwidth of system
components across matrix sizes (§2.2).

Five series: CUDA cores, Tensor Cores, the NVMe-oF link, the 32-channel
datacenter SSD's internal bandwidth, and the 8-channel consumer SSD's
external bandwidth. Shape anchors: CUDA peaks at 2048², Tensor Cores at
512² with a large lead; each storage series saturates at a different
size ([C1]/[C3]).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.accelerator import RTX2080
from repro.analysis import PAPER, format_table
from repro.interconnect import saturation_curve
from repro.nvm import CONSUMER_SSD, PAPER_PROTOTYPE

DIMS = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]


def _series():
    cuda = {d: RTX2080.processing_rate(d, use_tensor_cores=False)
            for d in DIMS}
    tensor = {d: RTX2080.processing_rate(d, use_tensor_cores=True)
              for d in DIMS}
    # matrix of dim d = d*d*4 bytes moved per request
    sizes = [d * d * 4 for d in DIMS]
    nvmeof = dict(zip(DIMS, [r for _s, r in saturation_curve(
        PAPER_PROTOTYPE.link_bandwidth,
        PAPER_PROTOTYPE.link_command_overhead, sizes)]))
    internal = {
        d: min(PAPER_PROTOTYPE.internal_read_bandwidth,
               size / (PAPER_PROTOTYPE.timing.t_read
                       + size / PAPER_PROTOTYPE.internal_read_bandwidth))
        for d, size in zip(DIMS, sizes)}
    consumer = dict(zip(DIMS, [r for _s, r in saturation_curve(
        CONSUMER_SSD.link_bandwidth,
        CONSUMER_SSD.link_command_overhead, sizes)]))
    return {"cuda": cuda, "tensor": tensor, "nvmeof": nvmeof,
            "internal_32ch": internal, "consumer_8ch": consumer}


def test_fig3_processing_rates(benchmark):
    series = once(benchmark, _series)
    rows = []
    for d in DIMS:
        rows.append([f"{d}x{d}"]
                    + [f"{series[k][d] / 1e9:.2f}"
                       for k in ("cuda", "tensor", "nvmeof",
                                 "internal_32ch", "consumer_8ch")])
    print()
    print(format_table(
        ["matrix", "CUDA GB/s", "TCU GB/s", "NVMe-oF GB/s",
         "32ch internal GB/s", "8ch external GB/s"], rows,
        title="Fig 3: effective processing rate / IO bandwidth"))

    cuda, tensor = series["cuda"], series["tensor"]
    # [C2]: engine optima differ — CUDA at 2048, TCU at 512
    assert max(cuda, key=cuda.get) == PAPER.cuda_optimal_dim
    assert max(tensor, key=tensor.get) == PAPER.tensor_optimal_dim
    # Fig 3: significant Tensor-Core lead everywhere in the sweet range
    for d in (256, 512, 1024, 2048):
        assert tensor[d] > 3 * cuda[d]
    # storage series saturate monotonically, at device-specific sizes
    for key in ("nvmeof", "internal_32ch", "consumer_8ch"):
        values = [series[key][d] for d in DIMS]
        assert values == sorted(values)
    # [C1]: the 32-channel device needs larger requests than it takes to
    # saturate the consumer device's slower link — different optima
    internal = series["internal_32ch"]
    consumer = series["consumer_8ch"]
    sat_internal = min(d for d in DIMS
                       if internal[d] > 0.95 * internal[DIMS[-1]])
    sat_consumer = min(d for d in DIMS
                       if consumer[d] > 0.95 * consumer[DIMS[-1]])
    assert sat_internal >= sat_consumer
    # the datacenter device's internal bandwidth tops every I/O series
    assert internal[DIMS[-1]] > series["nvmeof"][DIMS[-1]]
    assert internal[DIMS[-1]] > consumer[DIMS[-1]]
    # [C3]: neither storage optimum matches either compute optimum
    assert sat_internal != PAPER.tensor_optimal_dim or \
        sat_consumer != PAPER.cuda_optimal_dim
