"""Windowed per-resource busy fractions (heatmap data).

Computed from recorded spans: the run's horizon ``[0, last span end)``
is divided into equal windows and each resource's spans are clipped
into them, giving the busy fraction per (resource, window) cell — the
data behind a channel/bank utilization heatmap. Resources are FCFS
timelines, so spans on one resource never overlap and fractions stay
in ``[0, 1]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.runtime.trace import TraceRecorder

__all__ = ["DEFAULT_WINDOWS", "utilization_timeline", "utilization_csv"]

#: the one windowing default for every windowed view — utilization
#: heatmaps, ``repro report`` sections, and the live monitor's series
#: all divide their horizon into this many fixed-width windows unless
#: told otherwise (it used to be 32 here vs 16 in the report layer;
#: one constant keeps the views aligned window-for-window)
DEFAULT_WINDOWS = 16


def _is_flash_resource(resource: str) -> bool:
    head, sep, rest = resource.partition(":")
    if sep and head.startswith("d") and head[1:].isdigit():
        resource = rest  # device-pool prefix ("d2:ch1/bk0")
    if "/bk" in resource:
        channel = resource.split("/", 1)[0]
        return channel.startswith("ch") and channel[2:].isdigit()
    return resource.startswith("ch") and resource[2:].isdigit()


def utilization_timeline(trace: TraceRecorder, windows: int = DEFAULT_WINDOWS,
                         resources: Optional[Sequence[str]] = None,
                         flash_only: bool = False) -> Dict[str, object]:
    """Busy fraction per resource per time window.

    ``resources`` restricts the report to named resources;
    ``flash_only`` keeps just channel/bank lines (the heatmap the
    paper-style per-channel utilization argument needs). Returns a
    JSON-ready dict: horizon, window width, and per-resource fraction
    rows (index ``i`` covers ``[i * window, (i + 1) * window)``).
    """
    if windows < 1:
        raise ValueError("windows must be >= 1")
    spans = [s for s in trace.spans if not s.instant and s.resource != "ops"]
    if resources is not None:
        wanted = set(resources)
        spans = [s for s in spans if s.resource in wanted]
    if flash_only:
        spans = [s for s in spans if _is_flash_resource(s.resource)]
    horizon = max((s.end for s in spans), default=0.0)
    out: Dict[str, object] = {
        "horizon": horizon,
        "windows": windows,
        "window_seconds": horizon / windows if horizon > 0 else 0.0,
        "resources": {},
    }
    if horizon <= 0:
        return out
    width = horizon / windows
    rows: Dict[str, List[float]] = {}
    for span in spans:
        row = rows.get(span.resource)
        if row is None:
            row = rows[span.resource] = [0.0] * windows
        first = min(int(span.start / width), windows - 1)
        last = min(int(span.end / width), windows - 1)
        for index in range(first, last + 1):
            lo = index * width
            hi = lo + width
            overlap = min(span.end, hi) - max(span.start, lo)
            if overlap > 0:
                row[index] += overlap
    out["resources"] = {
        name: [min(1.0, busy / width) for busy in row]
        for name, row in sorted(rows.items())
    }
    return out


def utilization_csv(timeline: Dict[str, object]) -> str:
    """Tidy CSV: one row per (resource, window) cell."""
    lines = ["resource,window,window_start_s,busy_fraction"]
    width = timeline["window_seconds"]
    for name, fractions in timeline["resources"].items():
        for index, fraction in enumerate(fractions):
            lines.append(f"{name},{index},{index * width:.9g},"
                         f"{fraction:.6f}")
    return "\n".join(lines) + "\n"
