"""Exception hierarchy of the NDS core.

Reliability errors (uncorrectable reads, degraded reads, program/erase
status fails) live in :mod:`repro.faults.errors` — the flash substrate
raises them, so they sit below this package — and are re-exported here
as part of the public error surface.
"""

from __future__ import annotations

from repro.faults.errors import (DegradedReadError, EraseFailError,
                                 FaultError, ProgramFailError,
                                 UncorrectableError)

__all__ = [
    "NdsError",
    "SpaceNotFoundError",
    "SpaceClosedError",
    "InvalidCoordinateError",
    "ViewVolumeError",
    "PayloadError",
    "CapacityError",
    "FaultError",
    "UncorrectableError",
    "DegradedReadError",
    "ProgramFailError",
    "EraseFailError",
]


class NdsError(Exception):
    """Base class for all NDS-level failures."""


class SpaceNotFoundError(NdsError, KeyError):
    """Unknown space identifier."""


class SpaceClosedError(NdsError):
    """Operation on a closed or deleted space handle."""


class InvalidCoordinateError(NdsError, ValueError):
    """Coordinate/sub-dimensionality outside the space bounds or with
    mismatched rank."""


class ViewVolumeError(NdsError, ValueError):
    """A consumer view whose volume differs from the producer space
    (§3: views must have matching volumes)."""


class PayloadError(NdsError, ValueError):
    """Write payload does not match the command's sub-dimensionality or
    the space's element size."""


class CapacityError(NdsError, RuntimeError):
    """The device cannot supply free units even after garbage collection."""
