"""Smoke tests for the shared experiment drivers (small scale)."""

import pytest

from repro.analysis.experiments import (endtoend_sweep, fig3_series,
                                        micro_read_bandwidths,
                                        micro_write_bandwidths,
                                        overhead_latencies)


class TestMicroDrivers:
    def test_read_bandwidths_structure(self):
        reads = micro_read_bandwidths(n=1024)
        assert set(reads) == {"row-fetch", "column-fetch",
                              "submatrix-fetch"}
        for values in reads.values():
            assert set(values) == {"baseline", "software", "hardware"}
            assert all(v > 0 for v in values.values())

    def test_column_fetch_shape(self):
        reads = micro_read_bandwidths(n=1024)
        col = reads["column-fetch"]
        assert col["hardware"] > col["baseline"]

    def test_write_bandwidths(self):
        writes = micro_write_bandwidths(n=1024)
        assert writes["baseline"] > writes["software"]
        assert writes["baseline"] > writes["hardware"]


class TestFig3Driver:
    def test_five_series(self):
        series = fig3_series(dims=(64, 512, 2048))
        assert set(series) == {"cuda", "tensor", "nvmeof",
                               "internal_32ch", "consumer_8ch"}
        assert series["tensor"][512] > series["cuda"][512]


class TestEndToEndDriver:
    def test_single_workload_sweep(self):
        sweep = endtoend_sweep(workload_names=["KNN"])
        assert set(sweep) == {"KNN"}
        per_system = sweep["KNN"]
        assert set(per_system) == {"baseline", "software-nds",
                                   "software-oracle", "hardware-nds"}
        assert per_system["baseline"][0] == pytest.approx(1.0)


class TestOverheadDriver:
    def test_latency_ordering(self):
        numbers = overhead_latencies(n=1024)
        assert numbers["software"] > numbers["hardware"] > \
            numbers["baseline"]
        assert 0 < numbers["space_overhead"] < 0.01
