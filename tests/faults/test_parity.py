"""Cross-channel parity groups: degraded reads, reconstruction, and
parity-unit lifecycle across all four systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SpaceTranslationLayer
from repro.core.api import array_to_bytes
from repro.core.errors import DegradedReadError, UncorrectableError
from repro.faults import FaultConfig, FaultPlan
from repro.faults.parity import xor_fold
from repro.nvm import FlashArray, TINY_TEST
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)

N = 64  # dataset edge; 64*64 B = 16 pages on the tiny profile


def _data(seed: int = 7) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 256, size=(N, N), dtype=np.uint8).astype(np.uint8)


def _corrupt_config(parity: bool) -> FaultConfig:
    """Scripted corruption of the first programmed page, firing between
    ingest and the read."""
    return FaultConfig(parity=parity,
                       plan=FaultPlan().corrupt_page(0, 0, 0, 0, at=0.01))


class TestXorFold:
    def test_reconstruction_identity(self):
        rng = np.random.default_rng(3)
        block = rng.integers(0, 256, size=4 * 256, dtype=np.uint8
                             ).astype(np.uint8)
        pages = block.reshape(-1, 256)
        parity = xor_fold(block, 256)
        for lost in range(4):
            survivors = np.concatenate(
                [pages[:lost].ravel(), pages[lost + 1:].ravel(), parity])
            assert np.array_equal(xor_fold(survivors, 256), pages[lost])


@pytest.mark.parametrize("system_cls", [SoftwareNdsSystem, HardwareNdsSystem])
class TestNdsReconstruction:
    def test_corrupt_unit_is_reconstructed(self, system_cls):
        """The full chain: retry ladder -> ECC gives up -> parity
        reconstruction -> relocation; the host still gets its bytes."""
        data = _data()
        system = system_cls(TINY_TEST, store_data=True,
                            faults=_corrupt_config(parity=True))
        system.ingest("d", (N, N), 1, data=data)
        result = system.read_tile("d", (0, 0), (N, N), start_time=0.1,
                                  with_data=True)
        assert np.array_equal(result.data.reshape(N, N), data)
        counters = system.flash.faults.counters()
        assert counters["plan_pages_corrupted"] == 1
        assert counters["uncorrectable_reads"] == 1
        assert counters["read_retries"] == len(
            FaultConfig().retry_sense_factors)
        assert counters["stl_degraded_reads"] == 1
        assert counters["stl_pages_reconstructed"] == 1

    def test_relocation_makes_the_next_read_clean(self, system_cls):
        data = _data()
        system = system_cls(TINY_TEST, store_data=True,
                            faults=_corrupt_config(parity=True))
        system.ingest("d", (N, N), 1, data=data)
        system.read_tile("d", (0, 0), (N, N), start_time=0.1, with_data=True)
        before = system.flash.faults.counters()["stl_degraded_reads"]
        again = system.read_tile("d", (0, 0), (N, N), start_time=0.2,
                                 with_data=True)
        assert np.array_equal(again.data.reshape(N, N), data)
        assert system.flash.faults.counters()["stl_degraded_reads"] == before

    def test_without_parity_the_error_surfaces(self, system_cls):
        system = system_cls(TINY_TEST, store_data=True,
                            faults=_corrupt_config(parity=False))
        system.ingest("d", (N, N), 1, data=_data())
        with pytest.raises(UncorrectableError):
            system.read_tile("d", (0, 0), (N, N), start_time=0.1,
                             with_data=True)

    def test_channel_kill_exceeds_single_parity(self, system_cls):
        """A dead channel loses several units of a 16-unit block — more
        than one XOR unit can cover, so the typed degraded error
        surfaces (the documented single-failure assumption)."""
        config = FaultConfig(parity=True,
                             plan=FaultPlan().kill_channel(0, at=0.01))
        system = system_cls(TINY_TEST, store_data=True, faults=config)
        system.ingest("d", (N, N), 1, data=_data())
        with pytest.raises((DegradedReadError, UncorrectableError)):
            system.read_tile("d", (0, 0), (N, N), start_time=0.1,
                             with_data=True)


@pytest.mark.parametrize("system_cls", [BaselineSystem, OracleSystem])
class TestConventionalSystemsSurfaceTypedErrors:
    def test_corruption_is_uncorrectable(self, system_cls):
        system = system_cls(TINY_TEST, store_data=True,
                            faults=_corrupt_config(parity=False))
        system.ingest("d", (N, N), 1, data=_data())
        with pytest.raises(UncorrectableError) as info:
            system.read_tile("d", (0, 0), (N, N), start_time=0.1,
                             with_data=True)
        assert info.value.reason == "corrupt"
        assert info.value.fail_time > 0.1


class TestParityLifecycle:
    def _stl(self) -> SpaceTranslationLayer:
        flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                           store_data=True)
        return SpaceTranslationLayer(flash, parity=True)

    def test_writes_maintain_one_parity_unit_per_block(self):
        stl = self._stl()
        space = stl.create_space((N, N), 1)
        payload = _data()
        stl.write_region(space.space_id, (0, 0), (N, N),
                         data=array_to_bytes(payload))
        assert len(stl.parity) > 0
        assert stl.stats.counters["stl_parity_units_written"] >= len(stl.parity)

    def test_delete_space_releases_parity_units(self):
        stl = self._stl()
        space = stl.create_space((N, N), 1)
        stl.write_region(space.space_id, (0, 0), (N, N),
                         data=array_to_bytes(_data()))
        assert len(stl.parity) > 0
        stl.delete_space(space.space_id)
        assert len(stl.parity) == 0

    def test_parity_rejects_incompatible_modes(self):
        flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                           store_data=False)
        with pytest.raises(ValueError):
            SpaceTranslationLayer(flash, parity=True)
