"""Tests for the flash array: timing schedules, NAND semantics, data."""

import numpy as np
import pytest

from repro.nvm import (FlashArray, FlashStateError, Geometry, NvmTiming,
                       PhysicalPageAddress)


@pytest.fixture
def timing():
    return NvmTiming(t_read=10e-6, t_program=100e-6, t_erase=500e-6,
                     channel_bandwidth=100e6, t_cmd=0.0)


@pytest.fixture
def geometry():
    return Geometry(channels=4, banks_per_channel=2, blocks_per_bank=4,
                    pages_per_block=8, page_size=1000)


@pytest.fixture
def flash(geometry, timing):
    return FlashArray(geometry, timing, store_data=True)


XFER = 1000 / 100e6  # 10 us page transfer


class TestReadScheduling:
    def test_single_read_latency(self, flash):
        result = flash.read_pages([PhysicalPageAddress(0, 0, 0, 0)], 0.0)
        assert result.end_time == pytest.approx(10e-6 + XFER)

    def test_reads_on_different_channels_are_parallel(self, flash):
        ppas = [PhysicalPageAddress(c, 0, 0, 0) for c in range(4)]
        result = flash.read_pages(ppas, 0.0)
        assert result.end_time == pytest.approx(10e-6 + XFER)

    def test_reads_on_same_bank_serialize_sensing(self, flash):
        ppas = [PhysicalPageAddress(0, 0, 0, p) for p in range(2)]
        result = flash.read_pages(ppas, 0.0)
        # page 0: sense 10 + xfer 10 = 20; bank held during transfer, so
        # page 1 senses [20, 30], transfers [30, 40]
        assert result.end_time == pytest.approx(40e-6)

    def test_reads_on_same_channel_different_banks_pipeline(self, flash):
        ppas = [PhysicalPageAddress(0, b, 0, 0) for b in range(2)]
        result = flash.read_pages(ppas, 0.0)
        # both sense in parallel [0,10]; transfers serialize on the channel
        assert result.end_time == pytest.approx(10e-6 + 2 * XFER)

    def test_issue_time_offsets_schedule(self, flash):
        result = flash.read_pages([PhysicalPageAddress(0, 0, 0, 0)], 5e-6)
        assert result.start_time == 5e-6
        assert result.end_time == pytest.approx(5e-6 + 20e-6)


class TestProgramSemantics:
    def test_program_then_read_roundtrip(self, flash):
        ppa = PhysicalPageAddress(1, 0, 0, 0)
        payload = np.arange(1000, dtype=np.uint8) % 251
        flash.program_pages([ppa], 0.0, data=[payload])
        assert flash.is_programmed(ppa)
        assert np.array_equal(flash.page_data(ppa), payload)

    def test_short_payload_zero_padded(self, flash):
        ppa = PhysicalPageAddress(0, 0, 0, 0)
        flash.program_pages([ppa], 0.0, data=[np.ones(10, dtype=np.uint8)])
        page = flash.page_data(ppa)
        assert page[:10].sum() == 10
        assert page[10:].sum() == 0

    def test_oversize_payload_rejected(self, flash):
        ppa = PhysicalPageAddress(0, 0, 0, 0)
        with pytest.raises(ValueError):
            flash.program_pages([ppa], 0.0,
                                data=[np.zeros(1001, dtype=np.uint8)])

    def test_program_twice_without_erase_raises(self, flash):
        ppa = PhysicalPageAddress(0, 0, 0, 0)
        flash.program_pages([ppa], 0.0)
        with pytest.raises(FlashStateError):
            flash.program_pages([ppa], 0.0)

    def test_erase_allows_reprogram(self, flash):
        ppa = PhysicalPageAddress(0, 0, 2, 3)
        flash.program_pages([ppa], 0.0, data=[np.full(5, 9, np.uint8)])
        flash.erase_block(0, 0, 2, 0.0)
        assert not flash.is_programmed(ppa)
        assert flash.page_data(ppa).sum() == 0
        flash.program_pages([ppa], 0.0)  # must not raise

    def test_program_timing_transfer_then_bank(self, flash):
        result = flash.program_pages([PhysicalPageAddress(0, 0, 0, 0)], 0.0)
        assert result.end_time == pytest.approx(XFER + 100e-6)

    def test_unwritten_page_reads_zero(self, flash):
        assert flash.page_data(PhysicalPageAddress(3, 1, 3, 7)).sum() == 0


class TestErase:
    def test_erase_occupies_bank(self, flash):
        result = flash.erase_block(0, 0, 0, 0.0)
        assert result.end_time == pytest.approx(500e-6)
        read = flash.read_pages([PhysicalPageAddress(0, 0, 1, 0)], 0.0)
        # the bank is busy until the erase finishes
        assert read.end_time == pytest.approx(500e-6 + 20e-6)


class TestTimingOnlyMode:
    def test_no_nand_enforcement(self, geometry, timing):
        flash = FlashArray(geometry, timing, store_data=False)
        ppa = PhysicalPageAddress(0, 0, 0, 0)
        flash.program_pages([ppa], 0.0)
        flash.program_pages([ppa], 0.0)  # allowed in timing-only mode

    def test_stats_counting(self, flash):
        flash.read_pages([PhysicalPageAddress(0, 0, 0, 0)] , 0.0)
        flash.program_pages([PhysicalPageAddress(0, 0, 0, 1)], 0.0)
        assert flash.stats.get_count("pages_read") == 1
        assert flash.stats.get_count("pages_programmed") == 1


def test_reset_time_preserves_content(flash):
    ppa = PhysicalPageAddress(2, 1, 0, 0)
    flash.program_pages([ppa], 0.0, data=[np.full(4, 7, np.uint8)])
    flash.reset_time()
    assert flash.channel_lines[2].free_at == 0.0
    assert flash.page_data(ppa)[0] == 7
