"""End-to-end storage-system architectures (paper Fig. 7)."""

from repro.systems.base import StorageSystem, SystemOpResult, row_runs
from repro.systems.baseline import BaselineSystem
from repro.systems.hardware_nds import HardwareNdsSystem
from repro.systems.oracle import OracleSystem
from repro.systems.software_nds import SoftwareNdsSystem, SoftwareStlCosts

__all__ = [
    "StorageSystem",
    "SystemOpResult",
    "row_runs",
    "BaselineSystem",
    "SoftwareNdsSystem",
    "SoftwareStlCosts",
    "HardwareNdsSystem",
    "OracleSystem",
]
