"""Tests for the Eq. 5 space translator."""

import pytest

from repro.core import Space, pages_for_region, translate, translate_region
from repro.nvm import Geometry


@pytest.fixture
def geometry():
    return Geometry(channels=4, banks_per_channel=2, page_size=256)


@pytest.fixture
def space(geometry):
    # bb = (16, 16), grid = (4, 4)
    return Space.create(1, (64, 64), 4, geometry)


class TestTranslate:
    def test_aligned_single_block(self, space):
        accesses = translate(space, (0, 0), (16, 16))
        assert len(accesses) == 1
        assert accesses[0].block_coord == (0, 0)
        assert accesses[0].is_full_block

    def test_aligned_multi_block(self, space):
        accesses = translate(space, (0, 0), (32, 32))
        assert {a.block_coord for a in accesses} == {
            (0, 0), (0, 1), (1, 0), (1, 1)}
        assert all(a.is_full_block for a in accesses)

    def test_figure5_block_count(self, geometry):
        """Fig. 5: an 8192×8192 request over 128×128 blocks touches
        4096 = 64×64 building blocks."""
        big = Space.create(2, (16384, 16384), 4,
                           Geometry(channels=8, banks_per_channel=8,
                                    page_size=4096))
        assert big.bb == (128, 128)
        accesses = translate(big, (1, 0), (8192, 8192))
        assert len(accesses) == 64 * 64

    def test_unaligned_region_slices(self, space):
        accesses = translate_region(space, (8, 8), (16, 16))
        assert len(accesses) == 4
        by_coord = {a.block_coord: a for a in accesses}
        assert by_coord[(0, 0)].block_slice == ((8, 16), (8, 16))
        assert by_coord[(0, 0)].out_slice == ((0, 8), (0, 8))
        assert by_coord[(1, 1)].block_slice == ((0, 8), (0, 8))
        assert by_coord[(1, 1)].out_slice == ((8, 16), (8, 16))

    def test_out_slices_tile_the_request(self, space):
        accesses = translate_region(space, (3, 5), (30, 40))
        covered = 0
        for access in accesses:
            covered += access.element_count()
        assert covered == 30 * 40

    def test_blocks_emitted_in_row_major_grid_order(self, space):
        accesses = translate(space, (0, 0), (64, 64))
        coords = [a.block_coord for a in accesses]
        assert coords == sorted(coords)

    def test_region_bounds_checked(self, space):
        with pytest.raises(ValueError):
            translate_region(space, (60, 0), (16, 16))
        with pytest.raises(ValueError):
            translate_region(space, (0, 0), (0, 16))
        with pytest.raises(ValueError):
            translate_region(space, (0,), (16,))


class TestPagesForRegion:
    def test_full_block_touches_all_pages(self, space):
        pages = pages_for_region(space, ((0, 16), (0, 16)))
        assert pages == list(range(space.pages_per_block))

    def test_first_rows_touch_prefix_pages(self, space):
        # page holds 256 B = 64 elements = 4 block rows of 16 elements
        pages = pages_for_region(space, ((0, 4), (0, 16)))
        assert pages == [0]
        pages = pages_for_region(space, ((0, 8), (0, 16)))
        assert pages == [0, 1]

    def test_column_slice_touches_every_page(self, space):
        pages = pages_for_region(space, ((0, 16), (0, 4)))
        assert pages == list(range(space.pages_per_block))

    def test_single_element(self, space):
        assert pages_for_region(space, ((15, 16), (15, 16))) == [3]

    def test_1d_space_pages(self, geometry):
        space1d = Space.create(3, (4096,), 4, geometry)
        # bb = 256 elements = 1 KiB = 4 pages of 256 B
        assert space1d.bb == (256,)
        assert pages_for_region(space1d, ((0, 64),)) == [0]
        assert pages_for_region(space1d, ((60, 130),)) == [0, 1, 2]


class TestTranslationCacheEviction:
    """Regression: a full memo cache evicts one LRU entry instead of
    clearing wholesale (the old behaviour thrashed every working set
    one entry over the cap)."""

    def test_full_cache_keeps_recently_used_entries(self, geometry):
        from repro.core import translator

        space = Space.create(7, (64, 64), 4, geometry)
        old_limit = translator.translation_cache_limit()
        translator.set_translation_cache_limit(4)
        try:
            hot = ((0, 0), (16, 16))
            translate_region(space, *hot)
            for i in range(1, 4):
                translate_region(space, (16 * i, 0), (16, 16))
            translate_region(space, *hot)  # hit: refresh recency
            before = space.translation_cache_stats()["region_hits"]
            # one more distinct region forces a single LRU eviction...
            translate_region(space, (0, 16), (16, 16))
            assert len(space._region_cache) <= 4
            # ...and the hot entry survives it
            translate_region(space, *hot)
            after = space.translation_cache_stats()["region_hits"]
            assert after == before + 1
        finally:
            translator.set_translation_cache_limit(old_limit)

    def test_hot_entry_survives_overflowing_working_set(self, geometry):
        """A region re-accessed between every cold access stays resident
        while the working set overflows the cap: recency protects it.
        The old clear() dropped it at every overflow, so the hot region
        missed repeatedly despite being touched on every other access."""
        from repro.core import translator

        space = Space.create(8, (64, 64), 4, geometry)
        old_limit = translator.translation_cache_limit()
        translator.set_translation_cache_limit(4)
        try:
            hot = ((0, 0), (16, 16))
            cold = [((16 * (i % 4), 16), (16, 16)) for i in range(8)]
            translate_region(space, *hot)
            for origin, extents in cold:
                translate_region(space, origin, extents)
                translate_region(space, *hot)
            stats = space.translation_cache_stats()
            assert stats["region_hits"] >= len(cold)
            assert len(space._region_cache) <= 4
        finally:
            translator.set_translation_cache_limit(old_limit)


class TestPerSpaceStats:
    """Regression: hit/miss counters are per-Space; two spaces (or two
    concurrently-driven systems) never pollute each other's counts."""

    def test_stats_are_independent_between_spaces(self, geometry):
        a = Space.create(11, (64, 64), 4, geometry)
        b = Space.create(12, (64, 64), 4, geometry)
        translate_region(a, (0, 0), (16, 16))
        translate_region(a, (0, 0), (16, 16))
        translate_region(b, (0, 0), (16, 16))
        stats_a = a.translation_cache_stats()
        stats_b = b.translation_cache_stats()
        assert stats_a["region_hits"] == 1
        assert stats_a["region_misses"] == 1
        assert stats_b["region_hits"] == 0
        assert stats_b["region_misses"] == 1

    def test_reset_is_per_space(self, geometry):
        a = Space.create(13, (64, 64), 4, geometry)
        b = Space.create(14, (64, 64), 4, geometry)
        translate_region(a, (0, 0), (16, 16))
        translate_region(b, (0, 0), (16, 16))
        from repro.core.translator import (reset_translation_cache_stats,
                                           translation_cache_stats)
        reset_translation_cache_stats(a)
        assert translation_cache_stats(a)["region_misses"] == 0
        assert translation_cache_stats(b)["region_misses"] == 1

    def test_module_shim_aggregates_without_space(self, geometry):
        from repro.core.translator import (reset_translation_cache_stats,
                                           translation_cache_stats)
        reset_translation_cache_stats()
        space = Space.create(15, (64, 64), 4, geometry)
        translate_region(space, (0, 0), (16, 16))
        assert translation_cache_stats()["region_misses"] >= 1

    def test_two_systems_report_independent_counts(self):
        from repro.nvm import TINY_TEST
        from repro.systems import SoftwareNdsSystem

        first = SoftwareNdsSystem(TINY_TEST)
        second = SoftwareNdsSystem(TINY_TEST)
        first.ingest("d", (64, 64), 4)
        second.ingest("d", (64, 64), 4)
        space_second = second.stl.get_space(second._spaces["d"])
        baseline = dict(space_second.translation_cache_stats())
        for _ in range(3):
            first.read_tile("d", (0, 0), (16, 16))
        # driving the first system leaves the second's counters alone
        assert space_second.translation_cache_stats() == baseline
        second.read_tile("d", (0, 0), (16, 16))
        assert space_second.translation_cache_stats() != baseline
