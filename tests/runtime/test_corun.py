"""Multi-tenant co-run tests (the acceptance scenario of the request
spine): two workloads share one device, per-stream latencies come out,
the Chrome trace is valid JSON with properly nested spans, and the
contention the co-tenant adds is visible but never *negative* — a
stream can only get slower when sharing, never faster.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.profiles import TINY_TEST
from repro.runtime import TraceRecorder
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)
from repro.workloads import BfsWorkload, GemmWorkload, co_run_workloads


def _gemm():
    return GemmWorkload(n=64, tile=16, max_tiles=12)


def _bfs():
    return BfsWorkload(nodes=64, batch_rows=16)


@pytest.mark.parametrize("cls", [BaselineSystem, SoftwareNdsSystem,
                                 HardwareNdsSystem, OracleSystem])
def test_two_tenant_corun_reports_per_stream_latencies(cls):
    result = co_run_workloads([_gemm(), _bfs()],
                              cls(TINY_TEST, store_data=False),
                              queue_depth=4)
    assert set(result.streams) == {"GEMM", "BFS"}
    for stream in result.streams.values():
        assert stream.tiles == len(stream.completions)
        assert stream.tiles > 0
        assert stream.mean_io_latency > 0
        assert stream.max_io_latency >= stream.mean_io_latency
        assert stream.io_makespan == pytest.approx(max(stream.completions))
        assert stream.total_time >= stream.io_makespan
    assert result.total_time == pytest.approx(
        max(s.total_time for s in result.streams.values()))
    assert result.io_makespan == pytest.approx(
        max(s.io_makespan for s in result.streams.values()))


def test_corun_trace_is_valid_chrome_json(tmp_path):
    trace = TraceRecorder()
    result = co_run_workloads([_gemm(), _bfs()],
                              HardwareNdsSystem(TINY_TEST, store_data=False),
                              queue_depth=4, trace=trace)
    path = result.trace.save(tmp_path / "corun.json")
    loaded = json.load(open(path))
    events = loaded["traceEvents"]
    assert events
    # both tenants appear as processes, spans land on both
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"stream:GEMM", "stream:BFS"} <= names
    # every component span nests inside its parent op span
    ops = [s for s in trace.spans if s.resource == "ops"]
    assert len(ops) == sum(s.tiles for s in result.streams.values())
    for op in ops:
        for child in trace.op_children(op.op_id):
            assert child.start >= op.start - 1e-12
            assert child.end <= op.end + 1e-12
    # pipeline stage spans from both tenants made it into the trace
    resources = {s.resource for s in trace.spans}
    assert "GEMM/kernel" in resources and "BFS/kernel" in resources


def test_corun_is_deterministic_across_fresh_instances():
    def run_once():
        result = co_run_workloads([_gemm(), _bfs()],
                                  SoftwareNdsSystem(TINY_TEST,
                                                    store_data=False),
                                  queue_depth=2, arbitration="round_robin")
        return {name: s.completions for name, s in result.streams.items()}

    assert run_once() == run_once()


def test_corun_shares_datasets_between_tenants():
    # two BFS tenants traverse the same graph: ingested once
    a = BfsWorkload(nodes=64, batch_rows=16)
    b = BfsWorkload(nodes=64, batch_rows=32)
    b.name = "BFS-2"
    result = co_run_workloads([a, b],
                              HardwareNdsSystem(TINY_TEST, store_data=False),
                              queue_depth=2)
    assert result.streams["BFS"].tiles == 4
    assert result.streams["BFS-2"].tiles == 2


def test_corun_rejects_duplicate_names_and_bad_arbitration():
    with pytest.raises(ValueError, match="distinct names"):
        co_run_workloads([_gemm(), _gemm()],
                         HardwareNdsSystem(TINY_TEST, store_data=False))
    with pytest.raises(ValueError, match="arbitration"):
        co_run_workloads([_gemm()],
                         HardwareNdsSystem(TINY_TEST, store_data=False),
                         arbitration="lottery")


@settings(max_examples=20, deadline=None)
@given(queue_depth=st.integers(min_value=1, max_value=8),
       arbitration=st.sampled_from(["fifo", "round_robin"]),
       gemm_tiles=st.integers(min_value=2, max_value=10))
def test_contention_never_speeds_a_stream_up(queue_depth, arbitration,
                                             gemm_tiles):
    """Per-op dominance: with FCFS resource timelines, adding a
    co-tenant can only delay a stream's completions, op for op."""
    gemm = GemmWorkload(n=64, tile=16, max_tiles=gemm_tiles)

    solo = co_run_workloads([gemm],
                            HardwareNdsSystem(TINY_TEST, store_data=False),
                            queue_depth=queue_depth, arbitration=arbitration)
    shared = co_run_workloads([gemm, _bfs()],
                              HardwareNdsSystem(TINY_TEST, store_data=False),
                              queue_depth=queue_depth,
                              arbitration=arbitration)

    solo_c = solo.streams["GEMM"].completions
    shared_c = shared.streams["GEMM"].completions
    assert len(solo_c) == len(shared_c) > 0
    for alone, contended in zip(solo_c, shared_c):
        assert contended >= alone - 1e-12
    assert shared.streams["GEMM"].io_makespan >= \
        solo.streams["GEMM"].io_makespan - 1e-12
