"""Isolation sweep: structure, determinism, and the overlap helper."""

from __future__ import annotations

from repro.analysis.isolation import channel_overlap, isolation_sweep
from repro.runtime import TraceRecorder


def _span(trace, resource, stream, start, end):
    trace.push_op(stream, 0)
    trace.span(resource, start, end)
    trace.pop_op()


class TestChannelOverlap:
    def test_footprint_overlap_detected(self):
        trace = TraceRecorder()
        _span(trace, "ch0", "a", 0.0, 1.0)
        _span(trace, "ch0", "b", 1.0, 2.0)       # same channel, later
        _span(trace, "ch1", "a", 0.0, 1.0)       # a only
        result = channel_overlap(trace, "a", "b")
        assert result["shared_channels"] == ["ch0"]
        assert result["shared_busy_time"] == 2.0
        assert result["channels"]["ch1"] == {"a": 1.0, "b": 0.0}

    def test_disjoint_footprints(self):
        trace = TraceRecorder()
        _span(trace, "ch0", "a", 0.0, 1.0)
        _span(trace, "ch1", "b", 0.0, 1.0)
        result = channel_overlap(trace, "a", "b")
        assert result["shared_channels"] == []
        assert result["shared_busy_time"] == 0.0

    def test_bank_lines_and_other_resources_ignored(self):
        trace = TraceRecorder()
        _span(trace, "ch0/bk1", "a", 0.0, 1.0)
        _span(trace, "ch0/bk1", "b", 0.0, 1.0)
        _span(trace, "link", "a", 0.0, 1.0)
        _span(trace, "link", "b", 0.0, 1.0)
        assert channel_overlap(trace, "a", "b")["channels"] == {}


class TestIsolationSweep:
    def test_structure_and_hard_isolation(self):
        sweep = isolation_sweep()
        traces = sweep.pop("traces")
        assert set(traces) == {"shared", "weighted", "sharded"}
        assert set(sweep["scenarios"]) == {"shared", "weighted", "sharded"}
        assert set(sweep["solo_makespan"]) == {"GEMM", "BFS"}
        # without QoS the tenants collide; with shards they never do
        assert sweep["scenarios"]["shared"]["overlap"]["shared_channels"]
        sharded = sweep["scenarios"]["sharded"]["overlap"]
        assert sharded["shared_channels"] == []
        assert sharded["shared_busy_time"] == 0.0
        # co-running always costs something against solo
        for scenario in sweep["scenarios"].values():
            for stream in scenario["streams"].values():
                assert stream["slowdown"] >= 1.0 - 1e-9
        # weighted regime favours the weight-3 tenant over round-robin
        assert (sweep["scenarios"]["weighted"]["streams"]["GEMM"]["slowdown"]
                <= sweep["scenarios"]["shared"]["streams"]["GEMM"]["slowdown"]
                + 1e-9)

    def test_sweep_is_deterministic(self):
        def run():
            sweep = isolation_sweep(latency_target=5e-4)
            sweep.pop("traces")
            return sweep

        assert run() == run()

    def test_pooled_sweep_device_split_isolation(self):
        """With devices=N the sharded regime splits the pool: each
        tenant gets a disjoint device subset, and the overlap helper
        (which now recognises d0:ch1-style pooled lines) must see zero
        shared channels."""
        sweep = isolation_sweep(devices=2)
        sweep.pop("traces")
        assert sweep["devices"] == 2
        assert sweep["shard_devices"] == [[0], [1]]
        # pooled channel lines are counted for footprint overlap
        shared = sweep["scenarios"]["shared"]["overlap"]
        assert any(ch.startswith("d") for ch in shared["channels"])
        assert shared["shared_channels"]
        sharded = sweep["scenarios"]["sharded"]["overlap"]
        assert sharded["shared_channels"] == []
        assert sharded["shared_busy_time"] == 0.0

    def test_pooled_sweep_is_deterministic(self):
        def run():
            sweep = isolation_sweep(devices=2)
            sweep.pop("traces")
            return sweep

        assert run() == run()

    def test_slo_reported_when_target_set(self):
        sweep = isolation_sweep(latency_target=1e-9)
        sweep.pop("traces")
        # the no-QoS "shared" regime carries no targets by design
        assert all("slo" not in stream for stream
                   in sweep["scenarios"]["shared"]["streams"].values())
        for key in ("weighted", "sharded"):
            for stream in sweep["scenarios"][key]["streams"].values():
                assert stream["slo"]["violated"] == stream["tiles"]
