"""The ``repro report`` pipeline: run → attribute → render.

Builds the "where time goes" story for a workload on each of the four
architectures: per-op critical-path attribution over the trace spine,
the metrics-registry snapshot of every instrumented layer, queue-wait
vs service splits per stream, and windowed channel/bank utilization.
The same analysis runs on a saved Chrome trace (``--trace``), so a
trace captured anywhere can be broken down offline.

Everything here is deterministic: no wall clock, no randomness, sorted
keys — two identical runs produce byte-identical JSON reports (the CI
determinism gate diffs them).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

from repro.nvm.profiles import CONSUMER_SSD, DeviceProfile
from repro.obs.critical_path import (LAYERS, critical_path,
                                     device_layer_totals)
from repro.obs.metrics import MetricsRegistry
from repro.obs.utilization import (DEFAULT_WINDOWS, utilization_csv,
                                   utilization_timeline)
from repro.runtime.tileop import TileOp
from repro.runtime.trace import TraceRecorder
from repro.systems import (BaselineSystem, HardwareNdsSystem, OracleSystem,
                           SoftwareNdsSystem)
from repro.workloads.gemm import GemmWorkload
from repro.workloads.runner import ingest_datasets

__all__ = ["SYSTEM_FACTORIES", "DEFAULT_SYSTEMS", "run_system_report",
           "build_report", "analyze_trace", "format_report",
           "report_json"]

SYSTEM_FACTORIES = {
    "baseline": BaselineSystem,
    "software-nds": SoftwareNdsSystem,
    "hardware-nds": HardwareNdsSystem,
    "software-oracle": OracleSystem,
}

DEFAULT_SYSTEMS = ("baseline", "software-nds", "hardware-nds",
                   "software-oracle")


def _attribution_section(trace: TraceRecorder,
                         include_ops: bool = True) -> Dict[str, object]:
    """Critical-path analysis of one trace, JSON-ready."""
    analysis = critical_path(trace)
    totals = analysis.layer_totals()
    shares = analysis.layer_shares()
    section: Dict[str, object] = {
        "layers": {
            layer: {"seconds": totals.get(layer, 0.0),
                    "share": shares.get(layer, 0.0)}
            for layer in LAYERS if layer in totals
        },
        "dominant_ops": analysis.dominant_counts(),
        "totals": {
            "ops": len(analysis.ops),
            "service_time": analysis.total_service_time,
            "queue_wait": analysis.total_queue_wait,
        },
        # the partition invariant: per-op attributed time == service
        # time; the worst deviation over all ops should be float noise
        "max_partition_error": max(
            (abs(op.attributed_total - op.service_time)
             for op in analysis.ops), default=0.0),
    }
    if include_ops:
        section["ops"] = [
            {
                "op_id": op.op_id,
                "stream": op.stream,
                "label": op.label,
                "queue_wait": op.queue_wait,
                "service_time": op.service_time,
                "dominant": op.dominant,
                "by_layer": dict(sorted(op.by_layer.items())),
            }
            for op in analysis.ops
        ]
    return section


def run_system_report(system_name: str, workload,
                      profile: DeviceProfile = CONSUMER_SSD,
                      queue_depth: int = 8,
                      windows: int = DEFAULT_WINDOWS,
                      include_ops: bool = True,
                      prometheus: bool = False,
                      devices: int = 1) -> Dict[str, object]:
    """Run ``workload`` on one architecture with full observability
    attached and return its report section. ``devices > 1`` runs the
    system over a device pool and adds a per-device breakdown."""
    factory = SYSTEM_FACTORIES.get(system_name)
    if factory is None:
        raise ValueError(f"unknown system {system_name!r}; pick from "
                         f"{sorted(SYSTEM_FACTORIES)}")
    system = factory(profile) if devices <= 1 else factory(
        profile, devices=devices)
    ingest_datasets(workload, system)
    system.reset_time()
    system._reset_runtime()

    trace = TraceRecorder()
    registry = MetricsRegistry()
    system.set_trace(trace)
    system.set_metrics(registry)

    scheduler = system.scheduler
    scheduler.stream(workload.name, queue_depth)
    for fetch in workload.tile_plan():
        scheduler.submit(TileOp.read(fetch.dataset, fetch.origin,
                                     fetch.extents, submit_time=0.0,
                                     stream=workload.name))
    scheduler.drain()

    section: Dict[str, object] = {
        "attribution": _attribution_section(trace, include_ops=include_ops),
        "streams": scheduler.stream_report(),
        "metrics": registry.snapshot(),
        "utilization": utilization_timeline(trace, windows=windows,
                                            flash_only=True),
        "resources": trace.resource_metrics(),
    }
    if devices > 1:
        section["devices"] = {
            "count": devices,
            "layer_seconds": device_layer_totals(trace),
            "report": scheduler.device_report() or {},
        }
    if prometheus:
        prefix = "repro_" + system_name.replace("-", "_")
        section["prometheus"] = registry.to_prometheus(prefix=prefix)
    return section


def build_report(workload=None,
                 systems: Sequence[str] = DEFAULT_SYSTEMS,
                 profile: DeviceProfile = CONSUMER_SSD,
                 queue_depth: int = 8,
                 windows: int = DEFAULT_WINDOWS,
                 include_ops: bool = True,
                 prometheus: bool = False,
                 devices: int = 1) -> Dict[str, object]:
    """The full ``repro report`` payload across the chosen systems."""
    if workload is None:
        workload = GemmWorkload(n=512, tile=128, max_tiles=24)
    report: Dict[str, object] = {
        "workload": workload.name,
        "tiles": len(workload.tile_plan()),
        "queue_depth": queue_depth,
        "windows": windows,
        "systems": {},
    }
    if devices > 1:
        report["devices"] = devices
    for name in systems:
        report["systems"][name] = run_system_report(
            name, workload, profile=profile, queue_depth=queue_depth,
            windows=windows, include_ops=include_ops,
            prometheus=prometheus, devices=devices)
    return report


def analyze_trace(trace: TraceRecorder, windows: int = DEFAULT_WINDOWS,
                  include_ops: bool = True) -> Dict[str, object]:
    """Offline analysis of a saved trace (no metrics registry — only
    what the spans themselves carry)."""
    return {
        "attribution": _attribution_section(trace, include_ops=include_ops),
        "utilization": utilization_timeline(trace, windows=windows,
                                            flash_only=True),
        "resources": trace.resource_metrics(),
    }


def report_json(report: Dict[str, object]) -> str:
    """Byte-stable JSON rendering (sorted keys, fixed separators)."""
    return json.dumps(report, sort_keys=True, indent=2,
                      separators=(",", ": ")) + "\n"


def write_utilization_csvs(report: Dict[str, object],
                           directory) -> List[Path]:
    """One utilization CSV per system section; returns paths written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    sections = report.get("systems", {"trace": report})
    for name, section in sections.items():
        timeline = section.get("utilization")
        if not timeline or not timeline.get("resources"):
            continue
        path = directory / f"utilization_{name}.csv"
        path.write_text(utilization_csv(timeline))
        written.append(path)
    return written


# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------
def _fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:.1f}"


def _format_attribution(name: str, section: Dict[str, object],
                        lines: List[str]) -> None:
    from repro.analysis.report import format_table

    attribution = section["attribution"]
    totals = attribution["totals"]
    rows = []
    for layer in LAYERS:
        entry = attribution["layers"].get(layer)
        if entry is None:
            continue
        rows.append([layer, _fmt_us(entry["seconds"]),
                     f"{entry['share']:.1%}",
                     str(attribution["dominant_ops"].get(layer, 0))])
    lines.append(format_table(
        ["layer", "time (us)", "share", "ops dominated"], rows,
        title=(f"{name}: where time goes — {totals['ops']} ops, "
               f"service {_fmt_us(totals['service_time'])} us, "
               f"queue wait {_fmt_us(totals['queue_wait'])} us")))


def _format_streams(section: Dict[str, object],
                    lines: List[str]) -> None:
    from repro.analysis.report import format_table

    streams = section.get("streams")
    if not streams:
        return
    rows = [[stream, str(entry["ops"]), _fmt_us(entry["mean_latency"]),
             _fmt_us(entry["p95_latency"]), _fmt_us(entry["mean_queue_wait"]),
             _fmt_us(entry["mean_service"])]
            for stream, entry in sorted(streams.items())]
    lines.append(format_table(
        ["stream", "ops", "mean lat (us)", "p95 lat (us)",
         "mean wait (us)", "mean service (us)"], rows))


def _format_histograms(section: Dict[str, object],
                       lines: List[str]) -> None:
    from repro.analysis.report import format_table

    metrics = section.get("metrics")
    if not metrics or not metrics.get("histograms"):
        return
    rows = []
    for name, hist in sorted(metrics["histograms"].items()):
        if not hist["count"]:
            continue
        rows.append([name, str(hist["count"]),
                     _fmt_us(hist["mean"]), _fmt_us(hist["p50"]),
                     _fmt_us(hist["p99"]), _fmt_us(hist["sum"])])
    if rows:
        lines.append(format_table(
            ["metric", "count", "mean (us)", "p50 (us)", "p99 (us)",
             "total (us)"],
            rows, title="latency histograms"))


def _format_utilization(section: Dict[str, object],
                        lines: List[str]) -> None:
    timeline = section.get("utilization")
    if not timeline or not timeline.get("resources"):
        return
    lines.append("channel/bank utilization (busy fraction per window):")
    for resource, fractions in timeline["resources"].items():
        if "/bk" in resource:
            continue  # keep the text view channel-level; CSV has banks
        cells = "".join("#" if f > 0.66 else "+" if f > 0.33
                        else "." if f > 0.0 else " " for f in fractions)
        mean = sum(fractions) / len(fractions) if fractions else 0.0
        lines.append(f"  {resource:>6} |{cells}| {mean:.0%}")
    lines.append("")


def _format_devices(section: Dict[str, object],
                    lines: List[str]) -> None:
    from repro.analysis.report import format_table

    devices = section.get("devices")
    if not devices:
        return
    report = devices.get("report") or {}
    layer_seconds = devices.get("layer_seconds") or {}
    rows = []
    for name, entry in sorted(report.items()):
        busy = sum((layer_seconds.get(name) or {}).values())
        rows.append([name,
                     "dead" if entry.get("dead") else "live",
                     str(entry.get("subops", 0)),
                     str(entry.get("bytes", 0)),
                     _fmt_us(busy),
                     str(entry.get("degraded_reads", 0)),
                     str(entry.get("rebuilds", 0)),
                     str(entry.get("migrations_in", 0)
                         + entry.get("migrations_out", 0))])
    if rows:
        lines.append(format_table(
            ["device", "state", "subops", "bytes", "busy (us)",
             "degraded", "rebuilds", "migrations"], rows,
            title=f"device pool ({devices.get('count', len(rows))} devices)"))


def format_report(report: Dict[str, object]) -> str:
    """Human-readable rendering of a report payload."""
    lines: List[str] = []
    if "systems" in report:
        lines.append(f"workload {report['workload']}: {report['tiles']} "
                     f"tile reads, queue depth {report['queue_depth']}")
        lines.append("")
        for name, section in report["systems"].items():
            _format_attribution(name, section, lines)
            _format_streams(section, lines)
            _format_histograms(section, lines)
            _format_utilization(section, lines)
            _format_devices(section, lines)
            lines.append("")
    else:
        _format_attribution("trace", report, lines)
        _format_utilization(report, lines)
    return "\n".join(lines)
