"""Property-based tests for views and the API round-trip."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (IdentityView, NdsApi, ReshapeView,
                        SpaceTranslationLayer, TileGridView)
from repro.nvm import FlashArray, TINY_TEST

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def _factor_pairs(volume: int):
    return [(a, volume // a) for a in range(1, volume + 1)
            if volume % a == 0]


@SETTINGS
@given(st.data())
def test_reshape_view_regions_tile_request(data):
    dims = (data.draw(st.integers(2, 12)), data.draw(st.integers(2, 12)))
    volume = dims[0] * dims[1]
    consumer = data.draw(st.sampled_from(_factor_pairs(volume)))
    view = ReshapeView(dims, consumer)
    origin = tuple(data.draw(st.integers(0, d - 1)) for d in consumer)
    extents = tuple(data.draw(st.integers(1, d - o))
                    for o, d in zip(origin, consumer))
    coverage = np.zeros(extents, dtype=np.int32)
    for region in view.resolve(origin, extents):
        slicer = tuple(slice(o, o + e) for o, e in
                       zip(region.out_origin, region.out_extents))
        coverage[slicer] += 1
        # producer regions within bounds
        for o, e, d in zip(region.producer_origin,
                           region.producer_extents, dims):
            assert 0 <= o and o + e <= d
    assert (coverage == 1).all()


@SETTINGS
@given(st.data())
def test_api_roundtrip_under_random_view(data):
    """Write through the producer view, read through a random reshape
    view: bytes must match numpy's reshape semantics."""
    flash = FlashArray(TINY_TEST.geometry, TINY_TEST.timing,
                       store_data=True)
    api = NdsApi(SpaceTranslationLayer(flash))
    rows = data.draw(st.integers(4, 16))
    cols = data.draw(st.integers(4, 16))
    sid = api.create_space((rows, cols), 4)
    producer = api.open_space(sid)
    seed = data.draw(st.integers(0, 2**31 - 1))
    payload = np.random.default_rng(seed).integers(
        0, 2**31, (rows, cols)).astype(np.int32)
    api.write(producer, (0, 0), (rows, cols), payload)

    consumer_dims = data.draw(st.sampled_from(_factor_pairs(rows * cols)))
    consumer = api.open_space(sid, view=consumer_dims)
    got, _ = api.read(consumer, (0, 0), consumer_dims, dtype=np.int32)
    assert np.array_equal(got, payload.reshape(consumer_dims))


@SETTINGS
@given(st.data())
def test_tile_grid_view_matches_block_assembly(data):
    tile_r = data.draw(st.integers(2, 6))
    tile_c = data.draw(st.integers(2, 6))
    grid_r = data.draw(st.integers(1, 3))
    grid_c = data.draw(st.integers(1, 3))
    tiles = grid_r * grid_c
    dims = (tile_r, tile_c, tiles)
    view = TileGridView(dims, (grid_r, grid_c))
    stack = np.arange(tile_r * tile_c * tiles).reshape(dims)
    expected = np.block([[stack[:, :, r * grid_c + c]
                          for c in range(grid_c)]
                         for r in range(grid_r)])
    assembled = np.zeros_like(expected)
    for region in view.resolve((0, 0), view.dims):
        src = tuple(slice(o, o + e) for o, e in
                    zip(region.producer_origin, region.producer_extents))
        dst = tuple(slice(o, o + e) for o, e in
                    zip(region.out_origin, region.out_extents))
        assembled[dst] = stack[src].reshape(region.out_extents)
    assert np.array_equal(assembled, expected)


@SETTINGS
@given(st.data())
def test_identity_view_noop(data):
    dims = tuple(data.draw(st.integers(1, 20)) for _ in range(
        data.draw(st.integers(1, 3))))
    view = IdentityView(dims)
    origin = tuple(data.draw(st.integers(0, d - 1)) for d in dims)
    extents = tuple(data.draw(st.integers(1, d - o))
                    for o, d in zip(origin, dims))
    regions = view.resolve(origin, extents)
    assert len(regions) == 1
    assert regions[0].producer_origin == origin
    assert regions[0].producer_extents == extents
