"""Differential validation of the analytic timeline model.

The storage model computes schedules analytically with
:class:`~repro.sim.resources.Timeline` (next-free-time cursors) on the
claim that FCFS schedules are deterministic — so the analytic schedule
must equal what an event-driven simulation of the same server produces.
:class:`EventDrivenServer` is the event-driven implementation; the
property tests feed both identical request streams and require
identical grants, guarding the central modelling shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.sim.engine import Simulator

__all__ = ["EventDrivenServer", "replay_requests"]


@dataclass(frozen=True)
class _Grant:
    start: float
    end: float


class EventDrivenServer:
    """A single FCFS server running on the event engine.

    Requests are submitted up front (arrival time + service demand, in
    submission order, as with ``Timeline.reserve``); the grants appear
    after :meth:`run`.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._pending: List[Tuple[float, float]] = []
        self.grants: List[_Grant] = []

    def submit(self, arrival: float, duration: float) -> None:
        if duration < 0:
            raise ValueError("negative duration")
        self._pending.append((arrival, duration))

    def run(self) -> List[_Grant]:
        """Process all submitted requests in order via events."""
        queue = list(self._pending)
        grants: List[_Grant] = [None] * len(queue)  # type: ignore

        def start_request(index: int, free_at: float) -> None:
            if index >= len(queue):
                return
            arrival, duration = queue[index]
            start = max(arrival, free_at)

            def begin() -> None:
                end = self.sim.now + duration

                def finish() -> None:
                    grants[index] = _Grant(start=start, end=end)
                    start_request(index + 1, end)

                self.sim.after(duration, finish)

            self.sim.at(start, begin)

        start_request(0, 0.0)
        self.sim.run()
        self.grants = list(grants)
        return self.grants


def replay_requests(requests: Sequence[Tuple[float, float]],
                    ) -> List[Tuple[float, float]]:
    """Event-driven grants for an (arrival, duration) stream."""
    sim = Simulator()
    server = EventDrivenServer(sim)
    for arrival, duration in requests:
        server.submit(arrival, duration)
    return [(g.start, g.end) for g in server.run()]
