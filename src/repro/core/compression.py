"""Building-block-granular compression (§5.3.4).

The paper's rule: compression composes with NDS when (1) it happens
before space allocation and (2) it operates in units of building
blocks. The STL then "simply uses fewer access units for each building
block" — placement and even-wearing still work because the §4.2 rules
don't care how many units a block has.

``BlockCompressor`` is the strategy interface; the zlib codec is the
real implementation (software/accelerator compression on the host for
the software NDS, an engine in the device for hardware NDS); the
truncating codec exists for tests that need deterministic ratios. A
compressed block stores a small header (magic + payload length) so
read-back is self-describing.
"""

from __future__ import annotations

import abc
import struct
import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["BlockCompressor", "ZlibCompressor", "CompressionStats",
           "HEADER_BYTES"]

#: 4-byte magic + 4-byte payload length
HEADER_BYTES = 8
_MAGIC = 0x4E44_435A  # "NDCZ"


@dataclass
class CompressionStats:
    """Aggregate effectiveness accounting."""

    blocks_compressed: int = 0
    raw_bytes: int = 0
    stored_bytes: int = 0

    @property
    def ratio(self) -> float:
        """stored/raw — lower is better; 1.0 = incompressible."""
        if self.raw_bytes == 0:
            return 1.0
        return self.stored_bytes / self.raw_bytes

    def record(self, raw: int, stored: int) -> None:
        self.blocks_compressed += 1
        self.raw_bytes += raw
        self.stored_bytes += stored


class BlockCompressor(abc.ABC):
    """Compression strategy applied per building block."""

    def __init__(self) -> None:
        self.stats = CompressionStats()

    @abc.abstractmethod
    def _compress(self, raw: bytes) -> bytes:
        ...

    @abc.abstractmethod
    def _decompress(self, payload: bytes, raw_size: int) -> bytes:
        ...

    # ------------------------------------------------------------------
    def compress_block(self, block: np.ndarray) -> np.ndarray:
        """Compress one block's raw bytes; returns header + payload.

        If compression does not help (payload + header >= raw), the raw
        bytes are stored with a pass-through header so the device never
        stores *more* than the uncompressed block.
        """
        raw = np.ascontiguousarray(block, dtype=np.uint8).tobytes()
        payload = self._compress(raw)
        if len(payload) + HEADER_BYTES >= len(raw):
            payload = raw
        header = struct.pack("<II", _MAGIC, len(payload))
        stored = np.frombuffer(header + payload, dtype=np.uint8)
        self.stats.record(len(raw), stored.size)
        return stored

    def decompress_block(self, stored: np.ndarray,
                         raw_size: int) -> np.ndarray:
        """Inverse of :meth:`compress_block`; ``stored`` may carry
        page-padding beyond the payload."""
        blob = np.ascontiguousarray(stored, dtype=np.uint8).tobytes()
        if len(blob) < HEADER_BYTES:
            raise ValueError("compressed block shorter than its header")
        magic, length = struct.unpack("<II", blob[:HEADER_BYTES])
        if magic != _MAGIC:
            raise ValueError(f"bad compressed-block magic {magic:#x}")
        payload = blob[HEADER_BYTES:HEADER_BYTES + length]
        if len(payload) != length:
            raise ValueError("compressed block truncated")
        if length == raw_size:        # pass-through
            raw = payload
        else:
            raw = self._decompress(payload, raw_size)
        if len(raw) != raw_size:
            raise ValueError(
                f"decompressed {len(raw)} B, expected {raw_size}")
        return np.frombuffer(raw, dtype=np.uint8).copy()


class ZlibCompressor(BlockCompressor):
    """DEFLATE per building block (level 1 by default — the throughput
    point hardware engines target)."""

    def __init__(self, level: int = 1) -> None:
        super().__init__()
        if not (0 <= level <= 9):
            raise ValueError("zlib level must be in [0, 9]")
        self.level = level

    def _compress(self, raw: bytes) -> bytes:
        return zlib.compress(raw, self.level)

    def _decompress(self, payload: bytes, raw_size: int) -> bytes:
        return zlib.decompress(payload)
