"""Tests for the FTL garbage collector."""

import numpy as np
import pytest

from repro.ftl import BaselineSSD, GarbageCollector, PageMapFTL, wear_report
from repro.ftl.wear import erases_by_plane
from repro.nvm import FlashArray, Geometry, NvmTiming, TINY_TEST


@pytest.fixture
def small_world():
    geometry = Geometry(channels=1, banks_per_channel=1, blocks_per_bank=4,
                        pages_per_block=4, page_size=64)
    timing = NvmTiming(t_read=1e-6, t_program=5e-6, t_erase=20e-6,
                       channel_bandwidth=100e6)
    flash = FlashArray(geometry, timing, store_data=True)
    ftl = PageMapFTL(geometry)
    gc = GarbageCollector(ftl, flash, threshold=0.30)
    return geometry, flash, ftl, gc


def _write(ftl, flash, gc, lpn, value, now=0.0):
    ppa, old = ftl.allocate(lpn)
    gc.note_alloc(lpn, ppa, old)
    flash.program_pages([ppa], now,
                        data=[np.full(4, value, dtype=np.uint8)])
    return ppa


class TestCollect:
    def test_collect_reclaims_invalid_pages(self, small_world):
        geometry, flash, ftl, gc = small_world
        # Fill the plane with overwrites of the same LPN: 15 writes out of
        # 16 pages, 14 of them stale.
        for value in range(15):
            _write(ftl, flash, gc, 0, value, now=float(value))
        assert gc.needs_collection(0, 0)
        result = gc.collect(0, 0, 100.0)
        assert result.ran
        assert result.blocks_erased >= 1
        # the forward map still resolves and data is preserved
        ppa = ftl.lookup(0)
        assert flash.page_data(ppa)[0] == 14

    def test_collect_relocates_live_data(self, small_world):
        geometry, flash, ftl, gc = small_world
        for lpn in range(3):
            _write(ftl, flash, gc, lpn, 100 + lpn, now=0.0)
        # stale churn on another lpn to create victims
        for value in range(12):
            _write(ftl, flash, gc, 99, value, now=1.0)
        gc.collect(0, 0, 50.0)
        for lpn in range(3):
            ppa = ftl.lookup(lpn)
            assert flash.page_data(ppa)[0] == 100 + lpn

    def test_threshold_validation(self, small_world):
        geometry, flash, ftl, _ = small_world
        with pytest.raises(ValueError):
            GarbageCollector(ftl, flash, threshold=0.0)
        with pytest.raises(ValueError):
            GarbageCollector(ftl, flash, threshold=1.0)

    def test_no_collection_when_above_threshold(self, small_world):
        geometry, flash, ftl, gc = small_world
        _write(ftl, flash, gc, 0, 1)
        result = gc.collect(0, 0, 10.0)
        assert not result.ran


class TestWear:
    def test_wear_report_counts_gc_erases(self):
        ssd = BaselineSSD(TINY_TEST, store_data=False)
        stride = (TINY_TEST.geometry.channels
                  * TINY_TEST.geometry.banks_per_channel)
        lpns = [i * stride for i in range(4)]
        for round_id in range(40):
            ssd.write_lpns(lpns, float(round_id))
        report = wear_report(ssd.ftl)
        assert report.total_erases == ssd.gc.total_erased
        assert report.max_erases >= 1
        assert report.min_erases == 0  # untouched planes exist
        assert report.spread >= 1

    def test_erases_by_plane_keys(self):
        ssd = BaselineSSD(TINY_TEST, store_data=False)
        by_plane = erases_by_plane(ssd.ftl)
        assert len(by_plane) == (TINY_TEST.geometry.channels
                                 * TINY_TEST.geometry.banks_per_channel)
        assert all(v == 0 for v in by_plane.values())
