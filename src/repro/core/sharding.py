"""Per-tenant physical space sharding (hard isolation).

Shared-SSD QoS systems distinguish *soft* isolation — a share-aware
scheduler arbitrating a common device — from *hard* isolation, where
each tenant's data is pinned to a disjoint subset of the physical
channels/banks so co-tenants never contend on the same flash timelines
(FlashBlox-style channel partitioning). :class:`ShardSpec` names such a
subset; the STL's allocator, garbage collector and parity writer all
keep a sharded space's units inside it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.nvm.geometry import Geometry

__all__ = ["ShardSpec"]


def _duplicates(values: Sequence[int]) -> Tuple[int, ...]:
    """The values appearing more than once, in first-seen order."""
    seen: set = set()
    dups = []
    for value in values:
        if value in seen and value not in dups:
            dups.append(value)
        seen.add(value)
    return tuple(dups)


@dataclass(frozen=True)
class ShardSpec:
    """A channel (and optionally bank) subset of one flash array.

    ``channels`` lists the channels this shard owns; ``banks`` (None =
    every bank of those channels) narrows it further. Two shards are
    disjoint when they share no (channel, bank) plane.
    """

    channels: Tuple[int, ...]
    banks: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        channels = tuple(int(c) for c in self.channels)
        duplicates = _duplicates(channels)
        if duplicates:
            raise ValueError(
                f"shard channels contain duplicate entries {duplicates}: "
                f"{channels}")
        object.__setattr__(self, "channels", tuple(sorted(channels)))
        if self.banks is not None:
            banks = tuple(int(b) for b in self.banks)
            duplicates = _duplicates(banks)
            if duplicates:
                raise ValueError(
                    f"shard banks contain duplicate entries {duplicates}: "
                    f"{banks}")
            object.__setattr__(self, "banks", tuple(sorted(banks)))
        if not self.channels:
            raise ValueError("a shard needs at least one channel")
        if self.banks is not None and not self.banks:
            raise ValueError("banks=() would leave the shard empty; "
                             "use banks=None for every bank")

    # ------------------------------------------------------------------
    def validate(self, geometry: Geometry) -> None:
        for channel in self.channels:
            if not 0 <= channel < geometry.channels:
                raise ValueError(
                    f"shard channel {channel} outside geometry "
                    f"(0..{geometry.channels - 1})")
        for bank in self.banks or ():
            if not 0 <= bank < geometry.banks_per_channel:
                raise ValueError(
                    f"shard bank {bank} outside geometry "
                    f"(0..{geometry.banks_per_channel - 1})")

    def planes(self, geometry: Geometry) -> FrozenSet[Tuple[int, int]]:
        """The (channel, bank) plane keys this shard owns."""
        self.validate(geometry)
        banks = (self.banks if self.banks is not None
                 else tuple(range(geometry.banks_per_channel)))
        return frozenset((c, b) for c in self.channels for b in banks)

    def overlaps(self, other: "ShardSpec", geometry: Geometry) -> bool:
        return bool(self.planes(geometry) & other.planes(geometry))

    def footprint(self, geometry: Geometry) -> str:
        """Human-readable ``channels × banks`` extent of this shard."""
        banks = (len(self.banks) if self.banks is not None
                 else geometry.banks_per_channel)
        return f"{len(self.channels)} channels x {banks} banks"

    def capacity_bytes(self, geometry: Geometry) -> int:
        """Raw bytes behind the shard's planes (before overprovisioning)."""
        return (len(self.planes(geometry)) * geometry.pages_per_bank
                * geometry.page_size)

    @classmethod
    def normalize(cls, shard: "ShardSpec | Sequence[int] | None",
                  ) -> Optional["ShardSpec"]:
        """Accept a ShardSpec, a bare channel sequence, or None."""
        if shard is None or isinstance(shard, cls):
            return shard
        return cls(channels=tuple(shard))
