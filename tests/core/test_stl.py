"""Tests for the Space Translation Layer."""

import numpy as np
import pytest

from repro.core import (CapacityError, SpaceNotFoundError,
                        SpaceTranslationLayer)
from repro.core.api import array_to_bytes, bytes_to_array
from repro.nvm import FlashArray, Geometry, NvmTiming


@pytest.fixture
def stl(tiny_flash):
    return SpaceTranslationLayer(tiny_flash)


def _write_array(stl, space_id, array, coordinate=None, sub_dim=None):
    raw = array_to_bytes(array)
    coordinate = coordinate or tuple(0 for _ in array.shape)
    sub_dim = sub_dim or array.shape
    return stl.write(space_id, coordinate, sub_dim, data=raw)


class TestSpaceManagement:
    def test_create_returns_fresh_ids(self, stl):
        a = stl.create_space((32, 32), 4)
        b = stl.create_space((32, 32), 4)
        assert a.space_id != b.space_id

    def test_get_unknown_space(self, stl):
        with pytest.raises(SpaceNotFoundError):
            stl.get_space(99)

    def test_delete_space_releases_units(self, stl, rng):
        space = stl.create_space((32, 32), 4)
        data = rng.integers(0, 255, (32, 32)).astype(np.int32)
        _write_array(stl, space.space_id, data)
        reverse_before = len(stl.gc.reverse)
        released = stl.delete_space(space.space_id)
        # every written unit is invalidated (reclaimed by a later GC)
        # and dropped from the reverse table
        assert released == reverse_before
        assert len(stl.gc.reverse) == 0
        with pytest.raises(SpaceNotFoundError):
            stl.get_space(space.space_id)


class TestReadWriteRoundtrip:
    def test_full_space(self, stl, rng):
        space = stl.create_space((48, 32), 4)
        data = rng.integers(0, 2**31, (48, 32)).astype(np.int32)
        _write_array(stl, space.space_id, data)
        result = stl.read(space.space_id, (0, 0), (48, 32))
        assert np.array_equal(bytes_to_array(result.data, np.int32), data)

    def test_arbitrary_tile(self, stl, rng):
        space = stl.create_space((64, 64), 4)
        data = rng.integers(0, 2**31, (64, 64)).astype(np.int32)
        _write_array(stl, space.space_id, data)
        result = stl.read_region(space.space_id, (5, 9), (20, 33))
        assert np.array_equal(bytes_to_array(result.data, np.int32),
                              data[5:25, 9:42])

    def test_unwritten_region_reads_zero(self, stl):
        space = stl.create_space((32, 32), 4)
        result = stl.read_region(space.space_id, (0, 0), (8, 8))
        assert result.data.sum() == 0

    def test_partial_write_then_read(self, stl, rng):
        space = stl.create_space((32, 32), 4)
        tile = rng.integers(0, 2**31, (10, 12)).astype(np.int32)
        stl.write_region(space.space_id, (3, 4), (10, 12),
                         data=array_to_bytes(tile))
        result = stl.read_region(space.space_id, (0, 0), (32, 32))
        full = bytes_to_array(result.data, np.int32)
        assert np.array_equal(full[3:13, 4:16], tile)
        assert full[0:3].sum() == 0

    def test_overwrite_read_modify_write(self, stl, rng):
        """Partial overwrites must preserve surrounding block content
        (new-unit programming with merge, §4.2)."""
        space = stl.create_space((32, 32), 4)
        base = rng.integers(0, 2**31, (32, 32)).astype(np.int32)
        _write_array(stl, space.space_id, base)
        patch = rng.integers(0, 2**31, (4, 4)).astype(np.int32)
        stl.write_region(space.space_id, (10, 10), (4, 4),
                         data=array_to_bytes(patch))
        result = stl.read(space.space_id, (0, 0), (32, 32))
        merged = bytes_to_array(result.data, np.int32)
        expected = base.copy()
        expected[10:14, 10:14] = patch
        assert np.array_equal(merged, expected)

    def test_3d_space_roundtrip(self, stl, rng):
        space = stl.create_space((8, 8, 4), 4)
        data = rng.integers(0, 2**31, (8, 8, 4)).astype(np.int32)
        _write_array(stl, space.space_id, data)
        result = stl.read_region(space.space_id, (2, 3, 1), (4, 4, 2))
        assert np.array_equal(bytes_to_array(result.data, np.int32),
                              data[2:6, 3:7, 1:3])

    def test_1d_space_roundtrip(self, stl, rng):
        space = stl.create_space((1024,), 8)
        data = rng.integers(0, 2**62, 1024).astype(np.int64)
        _write_array(stl, space.space_id, data)
        result = stl.read_region(space.space_id, (100,), (300,))
        assert np.array_equal(bytes_to_array(result.data, np.int64),
                              data[100:400])

    def test_wrong_data_shape_rejected(self, stl):
        space = stl.create_space((32, 32), 4)
        with pytest.raises(ValueError):
            stl.write(space.space_id, (0, 0), (8, 8),
                      data=np.zeros((4, 4, 4), dtype=np.uint8))


class TestTiming:
    def test_write_then_read_advance_time(self, stl):
        space = stl.create_space((32, 32), 4)
        write = stl.write(space.space_id, (0, 0), (32, 32))
        assert write.end_time > write.start_time
        read = stl.read(space.space_id, (0, 0), (32, 32),
                        start_time=write.end_time, with_data=False)
        assert read.end_time > read.start_time

    def test_block_results_carry_structure(self, stl):
        space = stl.create_space((32, 32), 4)
        stl.write(space.space_id, (0, 0), (32, 32))
        read = stl.read(space.space_id, (0, 0), (32, 32), with_data=False)
        assert read.pages_touched > 0
        assert read.nodes_visited >= len(read.blocks) * space.rank

    def test_partial_read_touches_fewer_pages(self, stl):
        space = stl.create_space((32, 32), 4)
        stl.write(space.space_id, (0, 0), (32, 32))
        full = stl.read(space.space_id, (0, 0), (32, 32), with_data=False)
        part = stl.read_region(space.space_id, (0, 0), (4, 32),
                               with_data=False)
        assert part.pages_touched < full.pages_touched


class TestGcUnderPressure:
    def test_overwrite_churn_triggers_nds_gc(self):
        geometry = Geometry(channels=2, banks_per_channel=1,
                            blocks_per_bank=4, pages_per_block=4,
                            page_size=64)
        timing = NvmTiming(t_read=1e-6, t_program=5e-6, t_erase=20e-6,
                           channel_bandwidth=100e6)
        flash = FlashArray(geometry, timing, store_data=True)
        stl = SpaceTranslationLayer(flash, gc_threshold=0.30)
        space = stl.create_space((8, 8), 2)   # one block of 128 B
        data = np.arange(64, dtype=np.int16).reshape(8, 8)
        for round_id in range(20):
            stl.write(space.space_id, (0, 0), (8, 8),
                      data=array_to_bytes(data + round_id),
                      start_time=float(round_id))
        assert stl.gc.total_erased > 0
        result = stl.read(space.space_id, (0, 0), (8, 8))
        assert np.array_equal(bytes_to_array(result.data, np.int16),
                              data + 19)

    def test_capacity_exhaustion_raises(self):
        geometry = Geometry(channels=1, banks_per_channel=1,
                            blocks_per_bank=2, pages_per_block=2,
                            page_size=64)
        timing = NvmTiming(t_read=1e-6, t_program=5e-6, t_erase=20e-6,
                           channel_bandwidth=100e6)
        flash = FlashArray(geometry, timing, store_data=False)
        stl = SpaceTranslationLayer(flash, gc_threshold=0.10)
        space = stl.create_space((64, 64), 4)  # far larger than 256 B
        with pytest.raises(CapacityError):
            stl.write(space.space_id, (0, 0), (64, 64))
