#!/usr/bin/env python3
"""Figure 5, live: one dataset, many dimensionalities.

A producer stores a 3-D space whose last axis enumerates four matrix
tiles (the paper's 8192×8192×4 example, scaled down). Consumers then
open the *same* space as:

* the producer's own 3-D view,
* a 2×2 tile-grid view (one big matrix of four quadrants),
* a flat 1-D view.

No data is rewritten between views — the STL translates coordinates to
the same building blocks (§4.3).

Run:  python examples/multi_view_tensor.py
"""

import numpy as np

from repro.core import NdsApi, SpaceTranslationLayer, TileGridView
from repro.nvm import PAPER_PROTOTYPE, FlashArray


def main() -> None:
    profile = PAPER_PROTOTYPE
    flash = FlashArray(profile.geometry, profile.timing, store_data=True)
    api = NdsApi(SpaceTranslationLayer(flash))

    # Producer: a (256, 256, 4) space — four 256x256 tiles.
    tile_dim, tiles = 256, 4
    space_id = api.create_space((tile_dim, tile_dim, tiles), element_size=4)
    space = api.space(space_id)
    print(f"producer space {space.dims}, building block {space.bb}")

    rng = np.random.default_rng(7)
    stack = rng.integers(0, 1000, (tile_dim, tile_dim, tiles)).astype(np.int32)
    producer = api.open_space(space_id)
    api.write(producer, (0, 0, 0), stack.shape, stack)
    print(f"stored {stack.nbytes >> 10} KiB as "
          f"{space.total_blocks} building blocks")

    # Consumer 1: the four tiles arranged as a 512x512 matrix (Fig. 5).
    grid = api.open_space(space_id, view=TileGridView(space.dims, (2, 2)))
    print(f"grid view dims: {grid.dims}")
    quadrant, timing = api.read(grid, (1, 0), (tile_dim, tile_dim),
                                dtype=np.int32)
    assert np.array_equal(quadrant, stack[:, :, 2])
    print(f"quadrant [1,0] = producer tile #2 "
          f"({len(timing.blocks)} building blocks, one request)")

    big, _ = api.read(grid, (0, 0), (512, 512), dtype=np.int32)
    expected = np.block([[stack[:, :, 0], stack[:, :, 1]],
                         [stack[:, :, 2], stack[:, :, 3]]])
    assert np.array_equal(big, expected)
    print("full 512x512 view assembles all four tiles correctly")

    # Consumer 2: a flat stream (e.g. a checksum pass over raw bytes).
    flat = api.open_space(space_id, view=(tile_dim * tile_dim * tiles,))
    head, _ = api.read(flat, (0,), (4096,), dtype=np.int32)
    assert np.array_equal(head, stack.reshape(-1)[:4096])
    print("1-D view streams the same bytes in row-major order")

    # Updates through one view are visible through all others.
    patch = np.full((64, 64), -1, dtype=np.int32)
    api.write(producer, (1, 1, 1), (64, 64, 1), patch[..., None])
    reread, _ = api.read(grid, (0, 0), (512, 512), dtype=np.int32)
    assert (reread[64:128, 320:384] == -1).all()
    print("a write through the 3-D view is visible in the grid view — "
          "single copy, zero duplication")
    print("done.")


if __name__ == "__main__":
    main()
