"""Hardware-accelerator substrate: GPU rate curves and kernel timing."""

from repro.accelerator.gpu import RTX2080, EngineCurve, GpuModel
from repro.accelerator.kernels import KernelModel

__all__ = ["GpuModel", "EngineCurve", "RTX2080", "KernelModel"]
