"""QoS on the request spine: weighted shares, SLO accounting, the
drain error policy, and scheduler reset pairing.

The stub-executor tests pin the arbitration *order* (deterministic,
no device); the real-system tests pin the acceptance criteria — a
weight-3 tenant gets ~3x the delivered service of a weight-1 co-tenant
while both are backlogged, and a mid-batch typed storage error never
drops the unexecuted remainder of the batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import UncorrectableError
from repro.faults import FaultConfig, FaultPlan
from repro.nvm import TINY_TEST
from repro.runtime import (QosSpec, RequestScheduler, ShardSpec, TileOp,
                           TraceRecorder, percentile)
from repro.systems import SoftwareNdsSystem
from repro.systems.base import SystemOpResult


class _StubExecutor:
    """0.1 s per op, started at the window's earliest time."""

    def __init__(self, cost: float = 0.1):
        self.cost = cost
        self.order = []

    def _execute_op(self, op, earliest_start):
        self.order.append(op.stream)
        return SystemOpResult(start_time=earliest_start,
                              end_time=earliest_start + self.cost,
                              useful_bytes=1, fetched_bytes=1, requests=1)


class _FailingExecutor(_StubExecutor):
    """Raises a typed storage error on the k-th executed op."""

    def __init__(self, fail_at: int):
        super().__init__()
        self.fail_at = fail_at

    def _execute_op(self, op, earliest_start):
        if len(self.order) == self.fail_at:
            self.order.append(op.stream)
            raise UncorrectableError(ppa=None, fail_time=earliest_start)
        return super()._execute_op(op, earliest_start)


def _op(dataset, stream, submit_time=0.0):
    return TileOp.read(dataset, (0,), (1,), submit_time=submit_time,
                       stream=stream)


def _submit_many(sched, counts):
    for name, count in counts.items():
        for i in range(count):
            sched.submit(_op(f"{name}{i}", stream=name))


# ----------------------------------------------------------------------
# weighted arbitration (stub executor)
# ----------------------------------------------------------------------
def test_weighted_share_tracks_weights_while_both_backlogged():
    """Weights 3:1 with proportional backlogs (30 vs 10 equal-cost
    ops): when the light stream exhausts, the heavy stream must have
    been served within 10% of 3x as much."""
    sched = RequestScheduler(_StubExecutor(), arbitration="weighted")
    sched.stream("heavy", weight=3.0)
    sched.stream("light", weight=1.0)
    _submit_many(sched, {"heavy": 30, "light": 10})
    sched.drain()
    order = sched.executor.order
    last_light = max(i for i, name in enumerate(order) if name == "light")
    heavy_before = sum(1 for name in order[:last_light] if name == "heavy")
    # served 3:1 -> ~27 heavy ops before the last light one
    assert 27 <= heavy_before <= 33
    # and total service shares land on the backlog ratio exactly
    report = sched.stream_report()
    assert report["heavy"]["service_share"] == pytest.approx(0.75)
    assert report["light"]["service_share"] == pytest.approx(0.25)


def test_weighted_interleave_is_deterministic():
    def run():
        sched = RequestScheduler(_StubExecutor(), arbitration="weighted")
        sched.stream("a", weight=2.0)
        sched.stream("b", weight=1.0)
        _submit_many(sched, {"a": 8, "b": 4})
        sched.drain()
        return sched.executor.order

    first = run()
    assert first == run()
    # weight-2 "a" is served twice as often while both are backlogged
    assert first[:6].count("a") == 4


def test_weighted_with_unequal_lengths_hands_over_residual_service():
    """A short heavy stream drains first; the light stream then gets
    the device to itself — every remaining op is the light tenant's."""
    sched = RequestScheduler(_StubExecutor(), arbitration="weighted")
    sched.stream("heavy", weight=3.0)
    sched.stream("light", weight=1.0)
    _submit_many(sched, {"heavy": 3, "light": 12})
    sched.drain()
    order = sched.executor.order
    last_heavy = max(i for i, name in enumerate(order) if name == "heavy")
    assert set(order[last_heavy + 1:]) == {"light"}
    assert order.count("light") == 12


def test_round_robin_with_unequal_lengths_keeps_cycling():
    sched = RequestScheduler(_StubExecutor(), arbitration="round_robin")
    _submit_many(sched, {"a": 4, "b": 2})
    done = sched.drain()
    assert [op.stream for op in done] == ["a", "b", "a", "b", "a", "a"]


def test_weight_validation_and_update():
    sched = RequestScheduler(_StubExecutor(), arbitration="weighted")
    with pytest.raises(ValueError, match="weight"):
        sched.stream("t", weight=0.0)
    handle = sched.stream("t", weight=2.0)
    assert sched.stream("t", weight=5.0) is handle
    assert handle.weight == 5.0
    with pytest.raises(ValueError, match="latency target"):
        sched.stream("t", latency_target=-1.0)


# ----------------------------------------------------------------------
# SLO accounting
# ----------------------------------------------------------------------
def test_slo_counts_and_trace_marks():
    trace = TraceRecorder()
    sched = RequestScheduler(_StubExecutor(), trace=trace)
    sched.stream("t", queue_depth=1, latency_target=0.25)
    for _ in range(4):
        sched.submit(_op("d", stream="t"))
    sched.drain()
    # depth-1 latencies: 0.1, 0.2, 0.3, 0.4 against a 0.25 s target
    handle = sched.streams["t"]
    assert handle.slo_met == 2 and handle.slo_violated == 2
    report = sched.stream_report()["t"]
    assert report["slo"] == {"target": 0.25, "met": 2, "violated": 2}
    assert report["p50_latency"] == pytest.approx(0.3)
    assert report["p95_latency"] == pytest.approx(0.4)
    marks = trace.instants("slo")
    assert len(marks) == 2
    assert all(m.name == "slo_violation" and m.stream == "t" for m in marks)
    assert [m.start for m in marks] == pytest.approx([0.3, 0.4])


def test_no_target_means_no_slo_key():
    sched = RequestScheduler(_StubExecutor())
    sched.submit(_op("d", stream="t"))
    sched.drain()
    assert "slo" not in sched.stream_report()["t"]


def test_percentile_is_nearest_rank():
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.95) == 7.0
    values = [float(v) for v in range(1, 11)]
    assert percentile(values, 0.0) == 1.0
    # nearest rank round(0.5 * 9) == 4 (banker's rounding) -> 5.0
    assert percentile(values, 0.50) == 5.0
    assert percentile(values, 0.95) == 10.0
    assert percentile(values, 1.0) == 10.0


# ----------------------------------------------------------------------
# drain error policy (the lost-ops regression)
# ----------------------------------------------------------------------
def test_failing_op_is_consumed_and_the_rest_stays_pending():
    """Regression: drain() used to clear the whole batch up front, so
    a typed error on op k silently dropped ops k+1..n."""
    sched = RequestScheduler(_FailingExecutor(fail_at=2), arbitration="fifo")
    ops = [sched.submit(_op(f"d{i}", stream="t")) for i in range(5)]
    with pytest.raises(UncorrectableError):
        sched.drain()
    assert len(sched.executed) == 2
    assert sched.pending == 2                 # the failing op is consumed
    done = sched.drain()                      # resumes where it stopped
    assert [op.dataset for op in done] == ["d3", "d4"]
    assert sched.pending == 0
    assert ops[2].result is None              # the failed op never completed


def test_failing_op_with_real_fault_plan_mid_batch():
    """Op k of n hits a scripted uncorrectable corruption (no parity to
    fall back on); ops k+1..n survive the error and complete on the
    next drain. The clean dataset is sharded away from the corrupted
    channel so only the victim op fails."""
    n = 64
    data = np.random.default_rng(11).integers(
        0, 256, size=(n, n), dtype=np.uint8).astype(np.uint8)
    config = FaultConfig(parity=False,
                         plan=FaultPlan().corrupt_page(0, 0, 0, 0, at=0.01))
    system = SoftwareNdsSystem(TINY_TEST, store_data=True, faults=config)
    system.ingest("dirty", (n, n), 1, data=data)
    system.ingest("clean", (n, n), 1, data=data,
                  shard=ShardSpec(channels=(2, 3)))

    sched = system.scheduler
    ingested = len(sched.executed)            # ingest runs via execute()
    tile = (16, 16)
    sched.submit(TileOp.read("clean", (0, 0), tile, submit_time=0.1,
                             stream="t"))
    sched.submit(TileOp.read("dirty", (0, 0), (n, n), submit_time=0.1,
                             stream="t", with_data=True))
    sched.submit(TileOp.read("clean", (16, 16), tile, submit_time=0.1,
                             stream="t"))
    sched.submit(TileOp.read("clean", (32, 32), tile, submit_time=0.1,
                             stream="t"))
    with pytest.raises(UncorrectableError):
        sched.drain()
    assert len(sched.executed) == ingested + 1
    assert sched.pending == 2
    report = sched.stream_fault_report()
    assert report["t"]["ops_failed"] == 1
    assert report["t"]["uncorrectable_reads"] == 1
    done = sched.drain()
    assert len(done) == 2 and sched.pending == 0
    assert all(op.dataset == "clean" for op in done)


def test_weighted_failing_stream_charges_the_right_tenant():
    """Under weighted arbitration a failing tenant's error counters
    must land on that tenant, and the healthy co-tenant's batch still
    completes."""
    n = 64
    data = np.random.default_rng(11).integers(
        0, 256, size=(n, n), dtype=np.uint8).astype(np.uint8)
    config = FaultConfig(parity=False,
                         plan=FaultPlan().corrupt_page(0, 0, 0, 0, at=0.01))
    system = SoftwareNdsSystem(TINY_TEST, store_data=True, faults=config)
    system.ingest("dirty", (n, n), 1, data=data)
    system.ingest("clean", (n, n), 1, data=data,
                  shard=ShardSpec(channels=(2, 3)))

    sched = system.scheduler
    sched.arbitration = "weighted"
    sched.stream("victim", weight=1.0)
    sched.stream("healthy", weight=3.0)
    sched.submit(TileOp.read("dirty", (0, 0), (n, n), submit_time=0.1,
                             stream="victim", with_data=True))
    for i in range(3):
        sched.submit(TileOp.read("clean", (16 * i, 0), (16, 16),
                                 submit_time=0.1, stream="healthy"))
    with pytest.raises(UncorrectableError):
        while sched.pending:
            sched.drain()
    # finish the healthy tenant's remaining ops
    sched.drain()
    report = sched.stream_fault_report()
    assert report["victim"]["ops_failed"] == 1
    assert report["victim"]["uncorrectable_reads"] == 1
    assert "healthy" not in report
    healthy_ops = [op for op in sched.executed if op.stream == "healthy"]
    assert len(healthy_ops) == 3


# ----------------------------------------------------------------------
# reset pairing
# ----------------------------------------------------------------------
def test_reset_restarts_op_ids_alongside_trace_clear():
    """Regression: reset() forgot the op-id counter, so post-reset ops
    kept counting up and trace spans from different 'runs' could never
    collide — nor line up. Reset + TraceRecorder.clear() must yield
    the same ids (and spans) as a fresh scheduler."""
    trace = TraceRecorder()
    sched = RequestScheduler(_StubExecutor(), trace=trace)
    for i in range(3):
        sched.submit(_op(f"d{i}", stream="t"))
    first = sched.drain()
    assert [op.op_id for op in first] == [0, 1, 2]

    sched.reset()
    trace.clear()
    assert sched.pending == 0 and sched.executed == []
    for i in range(2):
        sched.submit(_op(f"e{i}", stream="t"))
    second = sched.drain()
    assert [op.op_id for op in second] == [0, 1]
    # every span in the cleared trace belongs to the post-reset ops
    op_spans = [s for s in trace.spans if s.resource == "ops"]
    assert sorted(s.op_id for s in op_spans) == [0, 1]
    # QoS accounting restarted too
    handle = sched.streams["t"]
    assert handle.service_time == pytest.approx(0.2)
    assert handle.slo_met == 0 and handle.slo_violated == 0


def test_qos_spec_validation():
    spec = QosSpec(weight=2.0, latency_target=1e-3,
                   shard=ShardSpec(channels=(0, 1)))
    assert spec.weight == 2.0
    with pytest.raises(ValueError):
        QosSpec(weight=0.0)
    with pytest.raises(ValueError):
        QosSpec(latency_target=0.0)
