"""Tests for the binary-command-driven NDS device (§5.3)."""

import numpy as np
import pytest

from repro.core.device import NdsDevice
from repro.interconnect import NvmeOpcode
from repro.interconnect.encoding import EncodedCommand, encode_command
from repro.nvm import TINY_TEST


@pytest.fixture
def device():
    return NdsDevice(TINY_TEST, store_data=True)


def _open(device, dims):
    completion = device.submit(encode_command(NvmeOpcode.OPEN_SPACE,
                                              dims=dims))
    assert completion.success
    return completion.space_id


class TestSpaceCommands:
    def test_open_space_returns_identifier_and_block(self, device):
        completion = device.submit(
            encode_command(NvmeOpcode.OPEN_SPACE, dims=(64, 64)))
        assert completion.success
        assert completion.space_id >= 1
        assert completion.fields["building_block"] == (16, 16)

    def test_close_space(self, device):
        sid = _open(device, (32, 32))
        completion = device.submit(
            encode_command(NvmeOpcode.CLOSE_SPACE, space_id=sid))
        assert completion.success

    def test_delete_space_releases_units(self, device, rng):
        sid = _open(device, (32, 32))
        data = rng.integers(0, 99, (32, 32)).astype(np.int32)
        device.submit(encode_command(NvmeOpcode.ND_WRITE, space_id=sid,
                                     coordinate=(0, 0), sub_dim=(32, 32)),
                      payload=data)
        completion = device.submit(
            encode_command(NvmeOpcode.DELETE_SPACE, space_id=sid))
        assert completion.success
        assert completion.fields["units_released"] > 0
        # further access fails cleanly
        failed = device.submit(
            encode_command(NvmeOpcode.ND_READ, space_id=sid,
                           coordinate=(0, 0), sub_dim=(32, 32)))
        assert not failed.success


class TestNdIo:
    def test_roundtrip_through_binary_commands(self, device, rng):
        sid = _open(device, (64, 48))
        data = rng.integers(0, 2**31, (64, 48)).astype(np.int32)
        write = device.submit(
            encode_command(NvmeOpcode.ND_WRITE, space_id=sid,
                           coordinate=(0, 0), sub_dim=(64, 48)),
            payload=data)
        assert write.success
        read = device.submit(
            encode_command(NvmeOpcode.ND_READ, space_id=sid,
                           coordinate=(1, 2), sub_dim=(16, 12)),
            start_time=write.end_time)
        assert read.success
        from repro.core.api import bytes_to_array
        tile = bytes_to_array(read.data, np.int32)
        assert np.array_equal(tile, data[16:32, 24:36])

    def test_timing_advances_through_pipeline(self, device):
        sid = _open(device, (32, 32))
        write = device.submit(
            encode_command(NvmeOpcode.ND_WRITE, space_id=sid,
                           coordinate=(0, 0), sub_dim=(32, 32)))
        assert write.end_time > 0
        read = device.submit(
            encode_command(NvmeOpcode.ND_READ, space_id=sid,
                           coordinate=(0, 0), sub_dim=(32, 32)),
            start_time=write.end_time)
        assert read.end_time > write.end_time

    def test_bad_payload_shape_fails_cleanly(self, device, rng):
        sid = _open(device, (16, 16))
        completion = device.submit(
            encode_command(NvmeOpcode.ND_WRITE, space_id=sid,
                           coordinate=(0, 0), sub_dim=(16, 16)),
            payload=rng.integers(0, 9, (4, 4)).astype(np.int32))
        assert not completion.success
        assert "shape" in completion.status


class TestConventionalCompatibility:
    def test_linear_write_read_roundtrip(self, device, rng):
        """§5.3.1: a conventional command is served as a 1-D space."""
        page = TINY_TEST.geometry.page_size
        payload = rng.integers(0, 256, 2 * page).astype(np.uint8)
        write = device.submit(
            encode_command(NvmeOpcode.WRITE, lba=3, length=2),
            payload=payload)
        assert write.success
        read = device.submit(
            encode_command(NvmeOpcode.READ, lba=3, length=2),
            start_time=write.end_time)
        assert read.success
        assert np.array_equal(read.data, payload)

    def test_linear_and_nd_spaces_coexist(self, device, rng):
        page = TINY_TEST.geometry.page_size
        device.submit(encode_command(NvmeOpcode.WRITE, lba=0, length=1),
                      payload=np.ones(page, dtype=np.uint8))
        sid = _open(device, (16, 16))
        data = rng.integers(0, 99, (16, 16)).astype(np.int32)
        device.submit(encode_command(NvmeOpcode.ND_WRITE, space_id=sid,
                                     coordinate=(0, 0), sub_dim=(16, 16)),
                      payload=data)
        linear = device.submit(encode_command(NvmeOpcode.READ, lba=0,
                                              length=1))
        assert linear.data[0] == 1

    def test_garbage_sqe_fails_cleanly(self, device):
        bogus = EncodedCommand(sqe=b"\xff" * 64)
        completion = device.submit(bogus)
        assert not completion.success


class TestErrorPropagation:
    """Regression: the completion path only converts *typed* storage
    failures (NdsError/FaultError) into failed completions; programming
    errors escape so bugs are not silently swallowed."""

    def test_programming_error_in_handler_propagates(self, device):
        sid = _open(device, (32, 32))

        def broken_plan(space_id, coordinate, sub_dim):
            raise TypeError("broken callback")

        device.stl.plan = broken_plan
        with pytest.raises(TypeError, match="broken callback"):
            device.submit(encode_command(NvmeOpcode.ND_READ, space_id=sid,
                                         coordinate=(0, 0),
                                         sub_dim=(16, 16)))

    def test_typed_storage_error_stays_a_failed_completion(self, device):
        completion = device.submit(
            encode_command(NvmeOpcode.ND_READ, space_id=999,
                           coordinate=(0, 0), sub_dim=(16, 16)))
        assert not completion.success
        assert "999" in completion.status
