"""Tests for bounded message-queue pipelines (§5.3.2 backpressure)."""

import pytest

from repro.host import run_pipeline
from repro.sim.queues import bounded_pipeline


class TestEquivalence:
    def test_unbounded_matches_run_pipeline(self):
        stage_times = [[1.0, 2.0, 0.5], [0.3, 1.5, 2.0], [2.0, 0.1, 0.1]]
        unbounded = bounded_pipeline(stage_times)
        reference = run_pipeline(stage_times)
        assert unbounded.total_time == pytest.approx(reference.total_time)

    def test_huge_queues_match_unbounded(self):
        stage_times = [[1.0, 2.0]] * 6
        assert bounded_pipeline(stage_times, [100]).total_time == \
            pytest.approx(bounded_pipeline(stage_times).total_time)


class TestBackpressure:
    def test_small_queue_blocks_fast_producer(self):
        # stage0 fast, stage1 slow: with queue size 1 the producer stalls
        stage_times = [[0.1, 1.0]] * 8
        tight = bounded_pipeline(stage_times, [1])
        assert sum(tight.stage_blocked) > 0
        # blocked time exists but throughput is still stage-1 bound,
        # so total latency matches the unbounded schedule
        loose = bounded_pipeline(stage_times, [8])
        assert tight.total_time == pytest.approx(loose.total_time)

    def test_blocking_propagates_upstream(self):
        # three stages, middle queue tiny, last stage slow: stage 0
        # eventually stalls behind stage 1's stalls
        stage_times = [[0.1, 0.1, 1.0]] * 10
        result = bounded_pipeline(stage_times, [1, 1])
        assert result.stage_blocked[0] > 0
        assert result.stage_blocked[1] > 0
        assert result.stage_blocked[2] == pytest.approx(0.0)

    def test_bounded_never_faster_than_unbounded(self):
        stage_times = [[0.5, 0.2, 0.9], [0.1, 1.2, 0.3], [0.8, 0.2, 0.2],
                       [0.05, 0.9, 0.6]]
        unbounded = bounded_pipeline(stage_times).total_time
        for capacity in (1, 2, 3):
            bounded = bounded_pipeline(stage_times,
                                       [capacity, capacity]).total_time
            assert bounded >= unbounded - 1e-12


class TestValidation:
    def test_empty(self):
        assert bounded_pipeline([]).total_time == 0.0

    def test_wrong_capacity_count(self):
        with pytest.raises(ValueError):
            bounded_pipeline([[1.0, 1.0]], [1, 1])

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            bounded_pipeline([[1.0, 1.0]], [0])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            bounded_pipeline([[1.0, -1.0]], [1])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            bounded_pipeline([[1.0], [1.0, 2.0]])
