"""Micro-benchmark: ``MultiTimeline.reserve`` plain-loop server scan.

The reserve hot path used to pick the least-loaded server with
``min(servers, key=...)`` — a closure allocation plus a keyed min per
call. The plain loop does the identical strict-``<`` scan (same winner,
same index, bit-identical schedule) without the churn. At the paper
prototype's 32-channel × 8-bank fan-out every simulated op lands on
these scans thousands of times, so the constant matters.

This benchmark times the current implementation against an inline
reimplementation of the old ``min``-based scan over the same reserve
sequence and asserts (a) the schedules agree exactly and (b) the loop
is not slower. Wall-clock assertions are deliberately loose — the point
is the equivalence plus a recorded number, not a brittle threshold.
"""

from __future__ import annotations

import time

from repro.sim.resources import MultiTimeline

#: paper §7.1 prototype fan-out: 32 channels × 8 banks
SERVERS = 32 * 8
RESERVES = 20_000


def _drive_current(multi: MultiTimeline) -> float:
    end = 0.0
    for i in range(RESERVES):
        _start, end, _idx = multi.reserve(i * 1e-7, 2e-6)
    return end


def _drive_min_based(multi: MultiTimeline) -> float:
    """The pre-optimization scan, reproduced: keyed ``min`` over the
    server list, then reserve on the winner."""
    end = 0.0
    for i in range(RESERVES):
        servers = multi.servers
        best = min(range(len(servers)), key=lambda s: servers[s].free_at)
        _start, end = servers[best].reserve(i * 1e-7, 2e-6)
    return end


def test_plain_loop_matches_min_based_scan():
    current = MultiTimeline(SERVERS, "flashlike")
    reference = MultiTimeline(SERVERS, "flashlike")
    assert _drive_current(current).hex() == \
        _drive_min_based(reference).hex()
    for ours, theirs in zip(current.servers, reference.servers):
        assert ours.free_at.hex() == theirs.free_at.hex()
        assert ours.busy_time.hex() == theirs.busy_time.hex()
        assert ours.ops == theirs.ops


def test_plain_loop_is_not_slower(capsys):
    # warm-up pass, then best-of-3 for each variant
    _drive_current(MultiTimeline(SERVERS, "warm"))
    _drive_min_based(MultiTimeline(SERVERS, "warm"))

    def best_of(fn) -> float:
        best = None
        for _ in range(3):
            multi = MultiTimeline(SERVERS, "bench")
            t0 = time.perf_counter()
            fn(multi)
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best = elapsed
        return best

    loop_s = best_of(_drive_current)
    min_s = best_of(_drive_min_based)
    with capsys.disabled():
        print(f"\nMultiTimeline.reserve x{RESERVES} over {SERVERS} "
              f"servers: plain loop {loop_s * 1e3:.1f} ms, min()-scan "
              f"{min_s * 1e3:.1f} ms ({min_s / loop_s:.2f}x)")
    # generous margin: the plain loop must not regress past the old scan
    assert loop_s < min_s * 1.5
