"""Wear accounting.

Commercial NVM has limited program/erase cycles, so controllers track
per-block erase counts (§2.1). The model exposes the distribution so
tests can check that allocation policies (both the baseline stripe
allocator and the NDS least-used-channel/bank rules) wear the array
evenly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ftl.mapping import PageMapFTL

__all__ = ["WearReport", "wear_report", "erases_by_plane"]


@dataclass(frozen=True)
class WearReport:
    """Summary of the erase-count distribution across all blocks."""

    total_erases: int
    min_erases: int
    max_erases: int
    mean_erases: float
    #: grown-bad blocks taken out of service
    retired_blocks: int = 0

    @property
    def spread(self) -> int:
        """Max minus min erase count — 0 means perfectly even wear."""
        return self.max_erases - self.min_erases


def wear_report(ftl: PageMapFTL) -> WearReport:
    """Collect erase counts from every plane of a page-mapped FTL.

    Block states are materialized lazily, so never-touched blocks count
    as zero erases.
    """
    counts: List[int] = []
    total_blocks = 0
    retired = 0
    for plane in ftl.planes.values():
        total_blocks += plane.geometry.blocks_per_bank
        for state in plane.blocks.values():
            counts.append(state.erase_count)
            if state.retired:
                retired += 1
    if total_blocks == 0:
        # degenerate geometry (no planes materialized): an all-zero
        # report, not a ValueError/ZeroDivisionError
        return WearReport(0, 0, 0, 0.0)
    untouched = total_blocks - len(counts)
    total = sum(counts)
    return WearReport(
        total_erases=total,
        min_erases=0 if untouched else min(counts),
        max_erases=max(counts) if counts else 0,
        mean_erases=total / total_blocks,
        retired_blocks=retired,
    )


def erases_by_plane(ftl: PageMapFTL) -> Dict[Tuple[int, int], int]:
    """Erase totals keyed by (channel, bank)."""
    return {
        key: sum(state.erase_count for state in plane.blocks.values())
        for key, plane in ftl.planes.items()
    }
