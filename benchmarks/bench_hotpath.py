#!/usr/bin/env python
"""Macro wall-clock benchmark for the simulator hot path.

Runs the GEMM and conv2d tile-sweep scenarios on all four systems,
prints the wall-clock table and writes ``BENCH_sim.json`` — wall
numbers plus a deterministic ``simulated`` section that must be
byte-identical across runs (CI's ``bench-smoke`` job diffs it).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        [--json BENCH_sim.json] [--tiles 48] [--repeats 1]

Equivalent to ``python -m repro bench``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default="BENCH_sim.json", metavar="PATH",
                        help="output JSON path (default BENCH_sim.json)")
    parser.add_argument("--tiles", type=int, default=48,
                        help="max tile fetches per workload (default 48)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="wall-time repeats, keep the fastest "
                             "(default 1)")
    args = parser.parse_args(argv)

    from repro.analysis.bench import (bench_json, format_bench,
                                      run_hotpath_bench)
    bench = run_hotpath_bench(max_tiles=args.tiles, repeats=args.repeats)
    print(format_bench(bench))
    out = Path(args.json)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(bench_json(bench))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
