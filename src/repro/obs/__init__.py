"""Derived observability over the trace/metrics spine.

``repro.obs`` turns the raw spans the runtime records into answers:

* :mod:`repro.obs.metrics` — a deterministic Counter/Gauge/Histogram
  registry threaded through every timed layer via ``set_metrics``
  (absent ⇒ bit-identical timings, like ``set_trace``);
* :mod:`repro.obs.critical_path` — per-op latency attribution: each
  op's ``[start, end)`` is partitioned over the component spans that
  were active, yielding a "where time goes" breakdown per layer;
* :mod:`repro.obs.utilization` — windowed per-resource busy fractions
  (channel/bank heatmap data) from the same spans;
* :mod:`repro.obs.report` — the ``python -m repro report`` backend:
  runs a workload (or loads a saved Chrome trace) and emits breakdown
  tables, histograms and utilization data as text / stable JSON /
  Prometheus text;
* :mod:`repro.obs.monitor` — the live monitor: windowed time-series
  (latency p50/p99, goodput/offered/shed, queue depth, cache, per-
  device busy and GC share) streamed during a run or replayed from a
  trace, behind ``python -m repro monitor``;
* :mod:`repro.obs.slo` — SRE-style SLO policies with multi-window
  burn-rate alert rules firing deterministic ``AlertEvent`` s;
* :mod:`repro.obs.diagnose` — automated bottleneck diagnosis: each
  alert's window span is diffed against the preceding healthy baseline
  to name the dominant layer/device/stream.
"""

from repro.obs.critical_path import (LAYERS, OpAttribution, attribute_op,
                                     classify_span, critical_path)
from repro.obs.diagnose import diagnose_report
from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge,
                               Histogram, MetricsRegistry)
from repro.obs.monitor import (Monitor, format_monitor, monitor_csv,
                               monitor_json, monitor_prometheus)
from repro.obs.slo import AlertEvent, BurnRule, SloPolicy
from repro.obs.utilization import (DEFAULT_WINDOWS, utilization_csv,
                                   utilization_timeline)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "LAYERS", "OpAttribution", "attribute_op", "classify_span",
    "critical_path",
    "DEFAULT_WINDOWS", "utilization_timeline", "utilization_csv",
    "Monitor", "format_monitor", "monitor_json", "monitor_csv",
    "monitor_prometheus",
    "SloPolicy", "BurnRule", "AlertEvent",
    "diagnose_report",
]
