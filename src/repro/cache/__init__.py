"""Host DRAM caching/tiering for building-block and tile reads.

Systems take ``cache=CacheConfig(...)``; with the knob absent every
timed float stays bit-identical (the faults/metrics discipline).
"""

from repro.cache.config import CACHE_POLICIES, CacheConfig
from repro.cache.policy import (AdmissionLruPolicy, ClockPolicy, LruPolicy,
                                make_policy)
from repro.cache.tier import CacheEntry, HostTierCache

__all__ = ["CacheConfig", "CACHE_POLICIES", "HostTierCache", "CacheEntry",
           "LruPolicy", "ClockPolicy", "AdmissionLruPolicy", "make_policy"]
