"""Grown-bad-block management in the baseline FTL, and the wear-report
regressions (empty device, retired-block accounting)."""

from __future__ import annotations

import numpy as np

from repro.faults import FaultConfig, FaultInjector, FaultPlan
from repro.ftl import (BaselineSSD, PageMapFTL, WearReport, erases_by_plane,
                       wear_report)
from repro.nvm import TINY_TEST


def _planeless_ftl() -> PageMapFTL:
    """An FTL with zero materialized planes (degenerate geometry)."""
    ftl = PageMapFTL(TINY_TEST.geometry)
    ftl.planes = {}
    return ftl


def _ssd(plan=None) -> BaselineSSD:
    ssd = BaselineSSD(TINY_TEST, store_data=True)
    if plan is not None:
        ssd.flash.attach_faults(FaultInjector(FaultConfig(plan=plan)))
    return ssd


class TestGrownBadBlocks:
    def test_program_fail_retires_block_and_data_survives(self):
        """A plan-marked bad block fails its first program; the FTL must
        retire it, re-drive the write elsewhere, and keep every byte."""
        ssd = _ssd(FaultPlan().mark_block_bad(0, 0, 0, at=0.0))
        lpns = list(range(32))
        payload = [np.full(ssd.page_size, i, dtype=np.uint8) for i in lpns]
        write = ssd.write_lpns(lpns, 0.0, data=payload)
        assert write.end_time > 0.0
        readback = ssd.read_lpns(lpns, write.end_time, with_data=True)
        for expected, got in zip(payload, readback.data):
            assert np.array_equal(expected, got)
        faults = ssd.flash.faults
        assert faults.stats.counters["program_fails"] >= 1
        assert faults.stats.counters["grown_bad_blocks"] >= 1
        assert ssd.gc.total_retired >= 1

    def test_retired_block_is_out_of_service(self):
        ssd = _ssd(FaultPlan().mark_block_bad(0, 0, 0, at=0.0))
        lpns = list(range(32))
        ssd.write_lpns(lpns, 0.0,
                       data=[np.zeros(ssd.page_size, np.uint8) for _ in lpns])
        plane = ssd.ftl.planes[(0, 0)]
        state = plane.blocks[0]
        assert state.retired
        assert 0 not in plane.free_blocks
        assert all(victim != 0 for victim in plane.victim_candidates())
        assert plane.retired_count() == 1

    def test_wear_report_counts_retired_blocks(self):
        ssd = _ssd(FaultPlan().mark_block_bad(0, 0, 0, at=0.0))
        lpns = list(range(16))
        ssd.write_lpns(lpns, 0.0,
                       data=[np.zeros(ssd.page_size, np.uint8) for _ in lpns])
        report = wear_report(ssd.ftl)
        assert report.retired_blocks == 1


class TestWearReportRegressions:
    def test_empty_ftl_is_all_zero_not_an_exception(self):
        """Zero materialized blocks used to ValueError/ZeroDivisionError
        (``min()``/``max()`` of an empty list, division by zero); both
        the fresh device and the degenerate no-planes case must yield an
        all-zero report."""
        for ftl in (PageMapFTL(TINY_TEST.geometry), _planeless_ftl()):
            report = wear_report(ftl)
            assert isinstance(report, WearReport)
            assert report.total_erases == 0
            assert report.min_erases == 0 and report.max_erases == 0
            assert report.mean_erases == 0.0
            assert report.retired_blocks == 0
            assert report.spread == 0

    def test_fresh_device_after_one_write_is_still_zero_wear(self):
        ssd = _ssd()
        ssd.write_lpns([0], 0.0, data=[np.zeros(ssd.page_size, np.uint8)])
        report = wear_report(ssd.ftl)
        assert report.total_erases == 0
        assert report.mean_erases == 0.0

    def test_erases_by_plane_is_exported_and_consistent(self):
        ssd = _ssd()
        lpns = list(range(48))
        data = [np.zeros(ssd.page_size, np.uint8) for _ in lpns]
        end = 0.0
        for _ in range(16):  # overwrite churn to force GC erases
            end = ssd.write_lpns(lpns, end, data=data).end_time
        per_plane = erases_by_plane(ssd.ftl)
        assert sum(per_plane.values()) == wear_report(ssd.ftl).total_erases
        assert sum(per_plane.values()) > 0
