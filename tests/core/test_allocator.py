"""Tests for the §4.2 allocation rules."""

import pytest

from repro.core import CapacityError, NdsAllocator
from repro.core.btree import BlockEntry
from repro.nvm import Geometry


@pytest.fixture
def geometry():
    return Geometry(channels=4, banks_per_channel=2, blocks_per_bank=4,
                    pages_per_block=8, page_size=256)


@pytest.fixture
def allocator(geometry):
    return NdsAllocator(geometry, seed=7)


def _entry(pages=32):
    return BlockEntry(coord=(0, 0), pages=[None] * pages)


class TestPlacementRules:
    def test_first_unit_lands_somewhere_valid(self, allocator, geometry):
        entry = _entry()
        ppa = allocator.allocate(entry, 0)
        assert 0 <= ppa.channel < geometry.channels
        assert 0 <= ppa.bank < geometry.banks_per_channel

    def test_block_spreads_over_all_channels_first(self, allocator, geometry):
        """Rule 2: successive units go to least-used channels of the
        same bank until every channel holds one."""
        entry = _entry()
        ppas = [allocator.allocate(entry, i)
                for i in range(geometry.channels)]
        assert len({p.channel for p in ppas}) == geometry.channels
        assert len({p.bank for p in ppas}) == 1

    def test_bank_advances_after_channels_exhausted(self, allocator, geometry):
        """Rule 3: once a bank holds a unit in every channel, the next
        unit moves to another bank."""
        entry = _entry()
        ppas = [allocator.allocate(entry, i)
                for i in range(2 * geometry.channels)]
        banks = {p.bank for p in ppas}
        assert len(banks) == 2
        # each (channel, bank) pair used exactly once
        pairs = {(p.channel, p.bank) for p in ppas}
        assert len(pairs) == 2 * geometry.channels

    def test_full_block_wraps_to_least_used(self, allocator, geometry):
        """Rule 4: with every (channel, bank) used, allocation continues
        on least-used banks."""
        entry = _entry(pages=3 * geometry.channels * geometry.banks_per_channel)
        total = geometry.channels * geometry.banks_per_channel
        ppas = [allocator.allocate(entry, i) for i in range(2 * total)]
        pairs = [(p.channel, p.bank) for p in ppas]
        # every pair used exactly twice — perfectly even
        from collections import Counter
        assert set(Counter(pairs).values()) == {2}

    def test_overwrite_prefers_same_channel_bank(self, allocator):
        entry = _entry()
        first = allocator.allocate(entry, 0)
        entry.record_release(0)
        allocator.invalidate(first)
        replacement = allocator.allocate(entry, 0,
                                         prefer=(first.channel, first.bank))
        assert (replacement.channel, replacement.bank) == (first.channel,
                                                           first.bank)
        assert replacement != first


class TestCapacity:
    def test_fallback_spills_to_other_planes(self, geometry):
        allocator = NdsAllocator(geometry, seed=7)
        pages_per_plane = geometry.pages_per_bank
        entry = _entry(pages=pages_per_plane + 1)
        # exhaust one plane by pinning allocations to it
        for i in range(pages_per_plane):
            allocator.allocate(entry, i, prefer=(0, 0))
        ppa = allocator.allocate(entry, pages_per_plane, prefer=(0, 0))
        assert (ppa.channel, ppa.bank) != (0, 0)

    def test_capacity_error_when_everything_full(self, geometry):
        allocator = NdsAllocator(geometry, seed=7)
        total = geometry.total_pages
        entry = _entry(pages=total + 1)
        for i in range(total):
            allocator.allocate(entry, i)
        with pytest.raises(CapacityError):
            allocator.allocate(entry, total)

    def test_free_accounting(self, allocator, geometry):
        entry = _entry()
        start = allocator.total_free_pages()
        allocator.allocate(entry, 0)
        assert allocator.total_free_pages() == start - 1
        assert 0.0 < allocator.free_fraction(0, 0) <= 1.0


class TestDeterminism:
    def test_same_seed_same_layout(self, geometry):
        a = NdsAllocator(geometry, seed=11)
        b = NdsAllocator(geometry, seed=11)
        ea, eb = _entry(), _entry()
        for i in range(16):
            assert a.allocate(ea, i) == b.allocate(eb, i)
