"""Host page cache.

§7.1 notes that the baseline's column-fetch bandwidth peaks "when the
system cache is allowed to serve later requests without visiting the
SSD": a row-store column fetch reads whole pages for a sliver of each,
and a later fetch of the *adjacent* column finds those pages cached.

The model is a page-granular LRU over logical page numbers. Hits cost a
host-memory copy instead of an I/O round trip; the capacity is a
fraction of host DRAM, as in a real kernel page cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Tuple

__all__ = ["PageCache", "CacheOutcome"]


@dataclass(frozen=True)
class CacheOutcome:
    """Split of one request's pages into hits and misses."""

    hits: Tuple[int, ...]
    misses: Tuple[int, ...]

    @property
    def hit_ratio(self) -> float:
        total = len(self.hits) + len(self.misses)
        return len(self.hits) / total if total else 0.0


class PageCache:
    """LRU cache of logical pages.

    ``capacity_pages == 0`` disables caching (every access misses).
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity_pages
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.hit_count = 0
        self.miss_count = 0

    # ------------------------------------------------------------------
    def access(self, lpns: Iterable[int]) -> CacheOutcome:
        """Look up a batch of pages; misses are inserted (read-allocate)."""
        hits: List[int] = []
        misses: List[int] = []
        for lpn in lpns:
            if self.capacity and lpn in self._pages:
                self._pages.move_to_end(lpn)
                hits.append(lpn)
            else:
                misses.append(lpn)
                self._insert(lpn)
        self.hit_count += len(hits)
        self.miss_count += len(misses)
        return CacheOutcome(hits=tuple(hits), misses=tuple(misses))

    def invalidate(self, lpns: Iterable[int]) -> None:
        """Drop pages (a write makes the cached copy stale in this
        write-around model)."""
        for lpn in lpns:
            self._pages.pop(lpn, None)

    def clear(self) -> None:
        self._pages.clear()

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    @property
    def hit_ratio(self) -> float:
        total = self.hit_count + self.miss_count
        return self.hit_count / total if total else 0.0

    # ------------------------------------------------------------------
    def _insert(self, lpn: int) -> None:
        if not self.capacity:
            return
        self._pages[lpn] = None
        self._pages.move_to_end(lpn)
        while len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
