"""Shared fixtures for the test suite.

Tests default to the tiny device profile so functional paths (GC,
exhaustion, data round-trips) are cheap to exercise; calibration tests
use the paper prototype profile in timing-only mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stl import SpaceTranslationLayer
from repro.nvm.flash import FlashArray
from repro.nvm.profiles import PAPER_PROTOTYPE, TINY_TEST


@pytest.fixture
def tiny_profile():
    return TINY_TEST


@pytest.fixture
def paper_profile():
    return PAPER_PROTOTYPE


@pytest.fixture
def tiny_flash(tiny_profile):
    return FlashArray(tiny_profile.geometry, tiny_profile.timing,
                      store_data=True)


@pytest.fixture
def tiny_stl(tiny_flash):
    return SpaceTranslationLayer(tiny_flash)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
