"""Runner edge cases: 3-D oracle copies, sampling, mixed shapes."""

import pytest

from repro.nvm.profiles import DeviceProfile
from repro.nvm import Geometry, NvmTiming
from repro.systems import BaselineSystem, OracleSystem
from repro.workloads import TtvWorkload, run_workload
from repro.workloads.runner import ingest_datasets, measure_io_times


@pytest.fixture
def midi_profile():
    """Bigger than TINY (for 3-D tensors) but still fast."""
    return DeviceProfile(
        name="midi",
        geometry=Geometry(channels=4, banks_per_channel=2,
                          blocks_per_bank=64, pages_per_block=16,
                          page_size=512),
        timing=NvmTiming(t_read=10e-6, t_program=100e-6, t_erase=500e-6,
                         channel_bandwidth=200e6, t_cmd=0.2e-6),
        link_bandwidth=2e9, link_command_overhead=2e-6,
        controller_command_time=1e-6, dram_bytes=2**20)


@pytest.fixture
def small_ttv():
    return TtvWorkload(rows=16, cols=16, depth=64, tile_rows=8,
                       tile_cols=8, tile_depth=32, max_tiles=8)


class TestOracle3d:
    def test_oracle_ingests_3d_tile_copies(self, midi_profile, small_ttv):
        oracle = OracleSystem(midi_profile, store_data=False)
        ingest_datasets(small_ttv, oracle)
        fetch = small_ttv.tile_plan()[0]
        oracle.reset_time()
        result = oracle.read_tile(fetch.dataset, fetch.origin,
                                  fetch.extents)
        assert result.useful_bytes == small_ttv.tile_bytes(fetch)

    def test_run_workload_on_oracle_3d(self, midi_profile, small_ttv):
        result = run_workload(small_ttv,
                              OracleSystem(midi_profile, store_data=False))
        assert result.total_time > 0
        assert result.tiles == len(small_ttv.tile_plan())


class TestSampling:
    def test_single_fetch_shape_still_measures(self, midi_profile,
                                               small_ttv):
        system = BaselineSystem(midi_profile, store_data=False)
        ingest_datasets(small_ttv, system)
        plan = small_ttv.tile_plan()[:1]
        times = measure_io_times(small_ttv, system, plan, samples=4)
        assert len(times) == 1
        assert next(iter(times.values())) > 0

    def test_more_samples_never_crash_on_short_plans(self, midi_profile,
                                                     small_ttv):
        system = BaselineSystem(midi_profile, store_data=False)
        ingest_datasets(small_ttv, system)
        plan = small_ttv.tile_plan()[:2]
        times = measure_io_times(small_ttv, system, plan, samples=9)
        assert all(t > 0 for t in times.values())
