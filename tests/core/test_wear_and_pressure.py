"""Long-churn behaviour: even wear and GC pressure on full systems."""

import numpy as np
import pytest

from repro.core import SpaceTranslationLayer
from repro.core.api import array_to_bytes
from repro.nvm import FlashArray, Geometry, NvmTiming
from repro.systems import HardwareNdsSystem, SoftwareNdsSystem
from repro.nvm.profiles import DeviceProfile


@pytest.fixture
def churn_world():
    geometry = Geometry(channels=4, banks_per_channel=2, blocks_per_bank=6,
                        pages_per_block=4, page_size=64)
    timing = NvmTiming(t_read=1e-6, t_program=5e-6, t_erase=20e-6,
                       channel_bandwidth=100e6)
    flash = FlashArray(geometry, timing, store_data=True)
    return geometry, flash


class TestEvenWear:
    def test_nds_churn_wears_evenly(self, churn_world):
        """§5.3.4 argues NDS 'can still ensure performance and
        even-wearing': sustained overwrites spread erases over planes."""
        geometry, flash = churn_world
        stl = SpaceTranslationLayer(flash, gc_threshold=0.30)
        space = stl.create_space((16, 16), 4)  # 1 KiB = 16 pages/write
        data = np.arange(256, dtype=np.int32).reshape(16, 16)
        for round_id in range(60):
            stl.write(space.space_id, (0, 0), (16, 16),
                      data=array_to_bytes(data + round_id),
                      start_time=float(round_id))
        assert stl.gc.total_erased > 4
        erases = {key: sum(state.erase_count
                           for state in plane.blocks.values())
                  for key, plane in stl.allocator.planes.items()}
        touched = [count for count in erases.values() if count > 0]
        # the random-start + least-used rules keep wear within a small
        # factor across the planes the space ever used
        assert len(touched) >= 4
        assert max(touched) <= 4 * max(1, min(touched)) + 4


class TestSystemsUnderPressure:
    @pytest.fixture
    def small_profile(self, churn_world):
        geometry, _flash = churn_world
        return DeviceProfile(
            name="pressure", geometry=geometry,
            timing=NvmTiming(t_read=1e-6, t_program=5e-6, t_erase=20e-6,
                             channel_bandwidth=100e6),
            link_bandwidth=1e9, link_command_overhead=1e-6,
            controller_command_time=1e-6, dram_bytes=2**20,
            overprovisioning=0.30)

    @pytest.mark.parametrize("factory", [SoftwareNdsSystem,
                                         HardwareNdsSystem],
                             ids=["software", "hardware"])
    def test_sustained_tile_overwrites_survive_gc(self, factory,
                                                  small_profile, rng):
        system = factory(small_profile, store_data=True)
        data = rng.integers(0, 2**31, (16, 16)).astype(np.int32)
        system.ingest("m", (16, 16), 4, data=data)
        latest = data
        for round_id in range(40):
            latest = rng.integers(0, 2**31, (8, 8)).astype(np.int32)
            system.write_tile("m", (4, 4), (8, 8), data=latest,
                              start_time=float(round_id))
        assert system.stl.gc.total_erased > 0
        result = system.read_tile("m", (4, 4), (8, 8), with_data=True,
                                  dtype=np.int32)
        assert np.array_equal(result.data, latest)
        # untouched corner survived every collection
        corner = system.read_tile("m", (0, 0), (4, 4), with_data=True,
                                  dtype=np.int32)
        assert np.array_equal(corner.data, data[:4, :4])
