"""Tests for Eq. 1–4 building-block sizing."""

import pytest

from repro.core import (bb_size_min, bb_size_min_3d, block_bytes, block_dims,
                        block_volume, pages_per_block)
from repro.nvm import Geometry, PAPER_PROTOTYPE


@pytest.fixture
def paper_example_geometry():
    """The worked example of §4.1: 4 KB pages, 8 parallel channels."""
    return Geometry(channels=8, banks_per_channel=8, page_size=4096)


class TestEq1:
    def test_paper_example(self, paper_example_geometry):
        """§4.1: 4 KB pages × 8 channels -> 32 KB minimum block."""
        assert bb_size_min(paper_example_geometry) == 32 * 1024

    def test_prototype(self):
        assert bb_size_min(PAPER_PROTOTYPE.geometry) == 32 * 4096


class TestEq2:
    def test_paper_example_128_per_dim(self, paper_example_geometry):
        """§4.1: 32 KB min, 4-byte elements -> 128 elements per
        dimension, 64 KB blocks, 2 pages per channel."""
        bb = block_dims((8192, 8192), 4, paper_example_geometry)
        assert bb == (128, 128)
        assert block_bytes(bb, 4) == 64 * 1024
        assert (block_bytes(bb, 4) // paper_example_geometry.page_size
                // paper_example_geometry.channels) == 2

    def test_dimension_is_power_of_two(self):
        for element_size in (1, 2, 4, 8, 16):
            bb = block_dims((4096, 4096), element_size,
                            PAPER_PROTOTYPE.geometry)
            assert bb[0] == bb[1]
            assert bb[0] & (bb[0] - 1) == 0

    def test_block_covers_all_channels(self):
        """A block must span at least one page per channel (Eq. 1)."""
        geometry = PAPER_PROTOTYPE.geometry
        for element_size in (1, 2, 4, 8):
            bb = block_dims((65536, 65536), element_size, geometry)
            assert block_bytes(bb, element_size) >= bb_size_min(geometry)


class TestEq3Eq4:
    def test_3d_minimum_uses_banks(self, paper_example_geometry):
        assert (bb_size_min_3d(paper_example_geometry)
                == 32 * 1024 * 8)

    def test_3d_cube_on_prototype(self):
        """Prototype: 3D min = 1 MiB; 4-byte elements -> 64 per dim."""
        bb = block_dims((2048, 2048, 2048), 4, PAPER_PROTOTYPE.geometry,
                        use_3d=True)
        assert bb == (64, 64, 64)

    def test_axes_beyond_third_get_one(self):
        bb = block_dims((128, 128, 128, 16), 4, PAPER_PROTOTYPE.geometry,
                        use_3d=True)
        assert bb[3] == 1
        assert sorted(bb[:3], reverse=True)[0] == bb[0]


class TestDefault2dPolicy:
    def test_figure5_space_gets_2d_blocks(self, paper_example_geometry):
        """Fig. 5: an (8192, 8192, 4) space uses (128, 128) 2-D blocks
        on the two large axes."""
        bb = block_dims((8192, 8192, 4), 4, paper_example_geometry)
        assert bb == (128, 128, 1)

    def test_2d_block_lands_on_largest_axes(self, paper_example_geometry):
        bb = block_dims((4, 8192, 8192), 4, paper_example_geometry)
        assert bb == (1, 128, 128)

    def test_1d_space(self, paper_example_geometry):
        bb = block_dims((10**6,), 4, paper_example_geometry)
        assert bb == (8192,)
        assert block_bytes(bb, 4) == bb_size_min(paper_example_geometry)


class TestOverride:
    def test_override_used_verbatim(self):
        """§7.1 picks 256×256 for 8-byte elements."""
        bb = block_dims((32768, 32768), 8, PAPER_PROTOTYPE.geometry,
                        override=(256, 256))
        assert bb == (256, 256)

    def test_override_rank_must_match(self):
        with pytest.raises(ValueError):
            block_dims((128, 128), 4, PAPER_PROTOTYPE.geometry,
                       override=(256,))

    def test_override_must_be_positive(self):
        with pytest.raises(ValueError):
            block_dims((128, 128), 4, PAPER_PROTOTYPE.geometry,
                       override=(0, 256))


class TestHelpers:
    def test_block_volume(self):
        assert block_volume((128, 128)) == 16384

    def test_pages_per_block(self, paper_example_geometry):
        assert pages_per_block((128, 128), 4, paper_example_geometry) == 16

    def test_pages_per_block_minimum_one(self, paper_example_geometry):
        assert pages_per_block((2, 2), 1, paper_example_geometry) == 1

    def test_invalid_inputs(self, paper_example_geometry):
        with pytest.raises(ValueError):
            block_dims((), 4, paper_example_geometry)
        with pytest.raises(ValueError):
            block_dims((128,), 0, paper_example_geometry)
